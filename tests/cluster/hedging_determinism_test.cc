// Hedging determinism: with the full gray-failure defense on (health
// scoring, adaptive deadlines, budget-gated hedged reads, lameduck
// quarantine), every per-client stat — including every hedge counter —
// must be byte-identical at 1, 2, and 4 engine threads. The defense
// state is all per-client (private HealthMonitor, private RetryBudget),
// so thread scheduling must be invisible to the logical outcome. The
// hedge accounting identity `sent == won + lost + suppressed` is a hard
// check per client and in aggregate.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "workload/op_stream.h"

namespace cot::cluster {
namespace {

ExperimentConfig DefendedGrayConfig() {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 20000;
  config.num_clients = 8;
  config.total_ops = 160000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 0.99;
  phase.read_fraction = 0.95;
  config.phases = {phase};

  FaultEvent gray;
  gray.server = 1;
  gray.type = FaultType::kGray;
  gray.start_op = 500;
  gray.end_op = 15000;
  gray.slow_factor = 10.0;
  gray.jitter = 0.25;
  config.faults.events = {gray};

  config.failure_policy.health_enabled = true;
  config.failure_policy.hedging_enabled = true;
  // A real (finite) budget so the suppressed path is exercised too; the
  // engine gives each client a private bucket when the defense is on.
  config.failure_policy.retry_budget_ratio = 0.1;
  config.failure_policy.retry_budget_burst = 4.0;
  return config;
}

void ExpectClientStatsIdentical(const FrontendStats& a, const FrontendStats& b,
                                size_t client) {
  EXPECT_EQ(a.reads, b.reads) << "client " << client;
  EXPECT_EQ(a.updates, b.updates) << "client " << client;
  EXPECT_EQ(a.local_hits, b.local_hits) << "client " << client;
  EXPECT_EQ(a.backend_lookups, b.backend_lookups) << "client " << client;
  // storage_reads is deliberately absent: with updates in the mix the
  // backend-hit / storage-read split may shift under interleaving
  // (invalidate-then-refill races — see ParallelExperimentTest). Every
  // defense-owned counter below must still match exactly.
  EXPECT_EQ(a.slow_ops, b.slow_ops) << "client " << client;
  EXPECT_EQ(a.gray_ops, b.gray_ops) << "client " << client;
  EXPECT_EQ(a.hedges_sent, b.hedges_sent) << "client " << client;
  EXPECT_EQ(a.hedges_won, b.hedges_won) << "client " << client;
  EXPECT_EQ(a.hedges_lost, b.hedges_lost) << "client " << client;
  EXPECT_EQ(a.hedges_suppressed, b.hedges_suppressed) << "client " << client;
  EXPECT_EQ(a.lameduck_entries, b.lameduck_entries) << "client " << client;
  EXPECT_EQ(a.lameduck_exits, b.lameduck_exits) << "client " << client;
  EXPECT_EQ(a.lameduck_bypasses, b.lameduck_bypasses) << "client " << client;
  EXPECT_EQ(a.lameduck_probes, b.lameduck_probes) << "client " << client;
  EXPECT_EQ(a.invalidations, b.invalidations) << "client " << client;
  EXPECT_EQ(a.lost_invalidations, b.lost_invalidations) << "client " << client;
  EXPECT_EQ(a.retries_suppressed, b.retries_suppressed) << "client " << client;
}

void ExpectHedgeIdentity(const FrontendStats& s, const char* what) {
  EXPECT_EQ(s.hedges_sent, s.hedges_won + s.hedges_lost + s.hedges_suppressed)
      << what << ": sent=" << s.hedges_sent << " won=" << s.hedges_won
      << " lost=" << s.hedges_lost << " suppressed=" << s.hedges_suppressed;
}

TEST(HedgingDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  ExperimentConfig config = DefendedGrayConfig();
  auto serial = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(serial.ok()) << serial.status();

  // The scenario must actually hedge, win some, and hit the budget wall —
  // a determinism claim over zeros would be vacuous.
  ASSERT_GT(serial->aggregate.hedges_sent, 0u);
  ASSERT_GT(serial->aggregate.hedges_won, 0u);
  ASSERT_GT(serial->aggregate.hedges_suppressed, 0u);
  ASSERT_GT(serial->aggregate.lameduck_entries, 0u);
  ExpectHedgeIdentity(serial->aggregate, "serial aggregate");
  for (size_t i = 0; i < serial->per_client.size(); ++i) {
    ExpectHedgeIdentity(serial->per_client[i], "serial client");
  }

  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    config.num_threads = threads;
    auto parallel = RunExperiment(config, CacheFactory{});
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->per_server_lookups, serial->per_server_lookups);
    ASSERT_EQ(parallel->per_client.size(), serial->per_client.size());
    for (size_t i = 0; i < serial->per_client.size(); ++i) {
      ExpectClientStatsIdentical(serial->per_client[i],
                                 parallel->per_client[i], i);
      ExpectHedgeIdentity(parallel->per_client[i], "parallel client");
    }
    ExpectHedgeIdentity(parallel->aggregate, "parallel aggregate");
    EXPECT_EQ(parallel->aggregate.hedges_sent, serial->aggregate.hedges_sent);
  }
}

TEST(HedgingDeterminismTest, ByteIdenticalWithBatchedReads) {
  // MultiGet batching routes group probes and bypasses differently from
  // singleton reads; the defense must stay deterministic there too.
  ExperimentConfig config = DefendedGrayConfig();
  config.batch_size = 4;
  auto serial = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->aggregate.hedges_sent, 0u);
  ExpectHedgeIdentity(serial->aggregate, "batched serial aggregate");

  config.num_threads = 4;
  auto parallel = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(parallel->per_client.size(), serial->per_client.size());
  for (size_t i = 0; i < serial->per_client.size(); ++i) {
    ExpectClientStatsIdentical(serial->per_client[i], parallel->per_client[i],
                               i);
  }
  ExpectHedgeIdentity(parallel->aggregate, "batched parallel aggregate");
}

TEST(HedgingDeterminismTest, HedgeWithdrawalsMatchBudgetAccounting) {
  // The budget-facing half of the identity: every non-suppressed hedge
  // made exactly one successful withdrawal, so won + lost can never
  // exceed what a budget of this ratio could have granted.
  ExperimentConfig config = DefendedGrayConfig();
  auto result = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t i = 0; i < result->per_client.size(); ++i) {
    const FrontendStats& s = result->per_client[i];
    const uint64_t withdrawals = s.hedges_won + s.hedges_lost;
    // Each op makes at most one fresh (budget-funding) delivery here — no
    // failures, no churn — so ratio * (reads + updates) + burst bounds
    // what the bucket could ever have granted.
    const double ceiling =
        0.1 * static_cast<double>(s.reads + s.updates) + 4.0;
    EXPECT_LE(static_cast<double>(withdrawals), ceiling + 1.0)
        << "client " << i;
  }
}

}  // namespace
}  // namespace cot::cluster
