#include "cluster/consistent_hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.h"

namespace cot::cluster {
namespace {

TEST(ConsistentHashRingTest, SingleServerOwnsEverything) {
  ConsistentHashRing ring(1);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(ring.ServerFor(k), 0u);
  }
}

TEST(ConsistentHashRingTest, LookupIsDeterministic) {
  ConsistentHashRing r1(8), r2(8);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(r1.ServerFor(k), r2.ServerFor(k));
  }
}

TEST(ConsistentHashRingTest, AllServersReceiveKeys) {
  ConsistentHashRing ring(8);
  std::map<ServerId, int> counts;
  for (uint64_t k = 0; k < 100000; ++k) ++counts[ring.ServerFor(k)];
  EXPECT_EQ(counts.size(), 8u);
}

TEST(ConsistentHashRingTest, KeyCountRoughlyBalancedWithVirtualNodes) {
  ConsistentHashRing ring(8, 128);
  std::vector<int> counts(8, 0);
  constexpr int kKeys = 200000;
  for (uint64_t k = 0; k < kKeys; ++k) ++counts[ring.ServerFor(k)];
  double expected = kKeys / 8.0;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.75);
    EXPECT_LT(c, expected * 1.25);
  }
}

TEST(ConsistentHashRingTest, FewVirtualNodesBalanceWorse) {
  // Sanity check on why virtual nodes exist: v=1 spreads key counts much
  // less evenly than v=128.
  auto spread = [](uint32_t vnodes) {
    ConsistentHashRing ring(8, vnodes);
    std::vector<int> counts(8, 0);
    for (uint64_t k = 0; k < 100000; ++k) ++counts[ring.ServerFor(k)];
    int lo = counts[0], hi = counts[0];
    for (int c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return static_cast<double>(hi) / std::max(1, lo);
  };
  EXPECT_GT(spread(1), spread(128));
}

TEST(ConsistentHashRingTest, AddServerMovesOnlySomeKeys) {
  ConsistentHashRing ring(8, 128);
  std::vector<ServerId> before;
  for (uint64_t k = 0; k < 50000; ++k) before.push_back(ring.ServerFor(k));
  ring.AddServer();
  EXPECT_EQ(ring.server_count(), 9u);
  int moved = 0, moved_elsewhere = 0;
  for (uint64_t k = 0; k < 50000; ++k) {
    ServerId now = ring.ServerFor(k);
    if (now != before[k]) {
      ++moved;
      if (now != 8) ++moved_elsewhere;  // must move only to the new server
    }
  }
  // Expected churn ~ 1/9 of keys; allow generous slack.
  EXPECT_LT(moved, 50000 / 9 * 2);
  EXPECT_GT(moved, 50000 / 9 / 3);
  EXPECT_EQ(moved_elsewhere, 0);
}

TEST(ConsistentHashRingTest, RemoveServerRedistributesItsKeysOnly) {
  ConsistentHashRing ring(4, 64);
  std::vector<ServerId> before;
  for (uint64_t k = 0; k < 20000; ++k) before.push_back(ring.ServerFor(k));
  ASSERT_TRUE(ring.RemoveServer(2).ok());
  for (uint64_t k = 0; k < 20000; ++k) {
    ServerId now = ring.ServerFor(k);
    EXPECT_NE(now, 2u);
    if (before[k] != 2) {
      EXPECT_EQ(now, before[k]) << "key " << k << " moved unnecessarily";
    }
  }
}

TEST(ConsistentHashRingTest, RemoveErrors) {
  ConsistentHashRing ring(2);
  EXPECT_EQ(ring.RemoveServer(5).code(), StatusCode::kNotFound);
  ASSERT_TRUE(ring.RemoveServer(0).ok());
  EXPECT_EQ(ring.RemoveServer(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(ring.RemoveServer(1).code(), StatusCode::kFailedPrecondition);
}

TEST(ConsistentHashRingTest, OwnershipFractionsSumToOne) {
  ConsistentHashRing ring(8, 128);
  auto fractions = ring.OwnershipFractions();
  ASSERT_EQ(fractions.size(), 8u);
  double sum = 0;
  for (double f : fractions) {
    EXPECT_GT(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// Regression for the id-allocation bug: AddServer after a removal must
// mint a fresh id, never recycle the removed one (a recycled id would let
// stale routing epochs alias two different physical servers).
TEST(ConsistentHashRingTest, RemovedIdsAreNeverReused) {
  ConsistentHashRing ring(3, 128);
  ASSERT_TRUE(ring.RemoveServer(1).ok());
  EXPECT_FALSE(ring.Contains(1));
  EXPECT_EQ(ring.AddServer(), 3u) << "id 1 must not be recycled";
  EXPECT_EQ(ring.server_count(), 4u);
  EXPECT_EQ(ring.active_server_count(), 3u);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_NE(ring.ServerFor(key), 1u);
  }
}

TEST(ConsistentHashRingTest, ExplicitRejoinRestoresExactRanges) {
  ConsistentHashRing ring(4, 256);
  std::vector<ServerId> before(2000);
  for (uint64_t key = 0; key < before.size(); ++key) {
    before[key] = ring.ServerFor(key);
  }
  ASSERT_TRUE(ring.RemoveServer(2).ok());
  EXPECT_FALSE(ring.Contains(2));
  // Rejoining under the same id restores the identical vnode positions:
  // ownership is exactly what it was before the departure.
  ASSERT_TRUE(ring.AddServerWithId(2).ok());
  EXPECT_TRUE(ring.Contains(2));
  for (uint64_t key = 0; key < before.size(); ++key) {
    EXPECT_EQ(ring.ServerFor(key), before[key]);
  }
  // Double-join of a live id is an error, as is joining while present.
  EXPECT_FALSE(ring.AddServerWithId(2).ok());
}

TEST(ConsistentHashRingTest, AddServerWithIdExtendsIdSpace) {
  ConsistentHashRing ring(2, 64);
  ASSERT_TRUE(ring.AddServerWithId(7).ok());
  EXPECT_TRUE(ring.Contains(7));
  EXPECT_GE(ring.server_count(), 8u);
  EXPECT_EQ(ring.active_server_count(), 3u);
  ServerId fresh = ring.AddServer();
  EXPECT_EQ(fresh, ring.server_count() - 1)
      << "fresh ids continue past the extended space";
  EXPECT_GE(fresh, 8u);
}

// Property test: across random add/remove/rejoin sequences the ownership
// fractions of the *active* set always sum to 1 and removed servers own
// nothing.
TEST(ConsistentHashRingTest, OwnershipFractionsSumToOneUnderChurn) {
  Rng rng(0x5EED5EEDULL);
  ConsistentHashRing ring(4, 128);
  std::vector<bool> active(4, true);
  for (int step = 0; step < 60; ++step) {
    uint64_t roll = rng.NextBelow(3);
    if (roll == 0) {
      ServerId id = ring.AddServer();
      if (id >= active.size()) active.resize(id + 1, false);
      active[id] = true;
    } else if (roll == 1 && ring.active_server_count() > 1) {
      ServerId id = static_cast<ServerId>(rng.NextBelow(ring.server_count()));
      if (active[id]) {
        ASSERT_TRUE(ring.RemoveServer(id).ok());
        active[id] = false;
      }
    } else {
      ServerId id = static_cast<ServerId>(rng.NextBelow(ring.server_count()));
      if (!active[id]) {
        ASSERT_TRUE(ring.AddServerWithId(id).ok());
        active[id] = true;
      }
    }

    auto fractions = ring.OwnershipFractions();
    ASSERT_EQ(fractions.size(), ring.server_count());
    double sum = 0.0;
    for (ServerId id = 0; id < fractions.size(); ++id) {
      EXPECT_GE(fractions[id], 0.0);
      if (!active[id]) {
        EXPECT_EQ(fractions[id], 0.0)
            << "removed server " << id << " must own nothing";
      }
      sum += fractions[id];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "after step " << step;
  }
}

}  // namespace
}  // namespace cot::cluster
