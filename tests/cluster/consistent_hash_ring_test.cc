#include "cluster/consistent_hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace cot::cluster {
namespace {

TEST(ConsistentHashRingTest, SingleServerOwnsEverything) {
  ConsistentHashRing ring(1);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(ring.ServerFor(k), 0u);
  }
}

TEST(ConsistentHashRingTest, LookupIsDeterministic) {
  ConsistentHashRing r1(8), r2(8);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(r1.ServerFor(k), r2.ServerFor(k));
  }
}

TEST(ConsistentHashRingTest, AllServersReceiveKeys) {
  ConsistentHashRing ring(8);
  std::map<ServerId, int> counts;
  for (uint64_t k = 0; k < 100000; ++k) ++counts[ring.ServerFor(k)];
  EXPECT_EQ(counts.size(), 8u);
}

TEST(ConsistentHashRingTest, KeyCountRoughlyBalancedWithVirtualNodes) {
  ConsistentHashRing ring(8, 128);
  std::vector<int> counts(8, 0);
  constexpr int kKeys = 200000;
  for (uint64_t k = 0; k < kKeys; ++k) ++counts[ring.ServerFor(k)];
  double expected = kKeys / 8.0;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.75);
    EXPECT_LT(c, expected * 1.25);
  }
}

TEST(ConsistentHashRingTest, FewVirtualNodesBalanceWorse) {
  // Sanity check on why virtual nodes exist: v=1 spreads key counts much
  // less evenly than v=128.
  auto spread = [](uint32_t vnodes) {
    ConsistentHashRing ring(8, vnodes);
    std::vector<int> counts(8, 0);
    for (uint64_t k = 0; k < 100000; ++k) ++counts[ring.ServerFor(k)];
    int lo = counts[0], hi = counts[0];
    for (int c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return static_cast<double>(hi) / std::max(1, lo);
  };
  EXPECT_GT(spread(1), spread(128));
}

TEST(ConsistentHashRingTest, AddServerMovesOnlySomeKeys) {
  ConsistentHashRing ring(8, 128);
  std::vector<ServerId> before;
  for (uint64_t k = 0; k < 50000; ++k) before.push_back(ring.ServerFor(k));
  ring.AddServer();
  EXPECT_EQ(ring.server_count(), 9u);
  int moved = 0, moved_elsewhere = 0;
  for (uint64_t k = 0; k < 50000; ++k) {
    ServerId now = ring.ServerFor(k);
    if (now != before[k]) {
      ++moved;
      if (now != 8) ++moved_elsewhere;  // must move only to the new server
    }
  }
  // Expected churn ~ 1/9 of keys; allow generous slack.
  EXPECT_LT(moved, 50000 / 9 * 2);
  EXPECT_GT(moved, 50000 / 9 / 3);
  EXPECT_EQ(moved_elsewhere, 0);
}

TEST(ConsistentHashRingTest, RemoveServerRedistributesItsKeysOnly) {
  ConsistentHashRing ring(4, 64);
  std::vector<ServerId> before;
  for (uint64_t k = 0; k < 20000; ++k) before.push_back(ring.ServerFor(k));
  ASSERT_TRUE(ring.RemoveServer(2).ok());
  for (uint64_t k = 0; k < 20000; ++k) {
    ServerId now = ring.ServerFor(k);
    EXPECT_NE(now, 2u);
    if (before[k] != 2) {
      EXPECT_EQ(now, before[k]) << "key " << k << " moved unnecessarily";
    }
  }
}

TEST(ConsistentHashRingTest, RemoveErrors) {
  ConsistentHashRing ring(2);
  EXPECT_EQ(ring.RemoveServer(5).code(), StatusCode::kNotFound);
  ASSERT_TRUE(ring.RemoveServer(0).ok());
  EXPECT_EQ(ring.RemoveServer(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(ring.RemoveServer(1).code(), StatusCode::kFailedPrecondition);
}

TEST(ConsistentHashRingTest, OwnershipFractionsSumToOne) {
  ConsistentHashRing ring(8, 128);
  auto fractions = ring.OwnershipFractions();
  ASSERT_EQ(fractions.size(), 8u);
  double sum = 0;
  for (double f : fractions) {
    EXPECT_GT(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace cot::cluster
