// Tests for the epoch-versioned routing protocol: fenced shard requests,
// the cluster's epoch lifecycle, and the client's refresh-and-retry loop —
// including the regression guarantee that a live RemoveServer under
// concurrent traffic produces observable EpochMismatch events.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/backend_server.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "metrics/event_tracer.h"
#include "workload/types.h"

namespace cot::cluster {
namespace {

TEST(EpochRoutingTest, FencedOpsRejectDisagreeingEpochWithoutSideEffects) {
  BackendServer shard;
  shard.SetRoutingEpoch(5);
  shard.Set(7, 70);

  // Matching epoch: behaves like the unfenced ops and counts load.
  BackendServer::FencedValue hit = shard.Get(7, 5);
  EXPECT_EQ(hit.status, BackendServer::ShardStatus::kOk);
  ASSERT_TRUE(hit.value.has_value());
  EXPECT_EQ(*hit.value, 70);
  EXPECT_EQ(shard.lookup_count(), 1u);

  // Stale epoch: rejected, nothing counted, content untouched.
  BackendServer::FencedValue stale = shard.Get(7, 4);
  EXPECT_EQ(stale.status, BackendServer::ShardStatus::kEpochMismatch);
  EXPECT_EQ(stale.shard_epoch, 5u);
  EXPECT_FALSE(stale.value.has_value());
  EXPECT_EQ(shard.lookup_count(), 1u);
  EXPECT_EQ(shard.epoch_mismatch_count(), 1u);

  BackendServer::FencedAck set = shard.Set(9, 90, 4);
  EXPECT_EQ(set.status, BackendServer::ShardStatus::kEpochMismatch);
  EXPECT_EQ(shard.size(), 1u) << "stale fill must not strand a copy";
  EXPECT_EQ(shard.set_count(), 1u);

  BackendServer::FencedAck del = shard.Delete(7, 6);
  EXPECT_EQ(del.status, BackendServer::ShardStatus::kEpochMismatch)
      << "an epoch from the future is a misroute too";
  EXPECT_EQ(shard.size(), 1u);
  EXPECT_EQ(shard.epoch_mismatch_count(), 3u);

  // Current epoch still works.
  BackendServer::FencedAck ok_del = shard.Delete(7, 5);
  EXPECT_EQ(ok_del.status, BackendServer::ShardStatus::kOk);
  EXPECT_TRUE(ok_del.existed);
  EXPECT_EQ(shard.size(), 0u);
}

TEST(EpochRoutingTest, TopologyMutationsAdvanceEpochAndStampAllShards) {
  CacheCluster cluster(3, 1000);
  EXPECT_EQ(cluster.routing_epoch(), 1u);
  for (ServerId id = 0; id < 3; ++id) {
    EXPECT_EQ(cluster.server(id).routing_epoch(), 1u);
  }

  ServerId added = cluster.AddServer();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(cluster.routing_epoch(), 2u);
  for (ServerId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.server(id).routing_epoch(), 2u);
  }

  ASSERT_TRUE(cluster.RemoveServer(1).ok());
  EXPECT_EQ(cluster.routing_epoch(), 3u);
  // Removed shards are stamped too: a stale client must get a mismatch
  // (and re-route), not a silent miss on a shard that left the ring.
  EXPECT_EQ(cluster.server(1).routing_epoch(), 3u);

  ASSERT_TRUE(cluster.RejoinServer(1).ok());
  EXPECT_EQ(cluster.routing_epoch(), 4u);

  CacheCluster::TopologyStats stats = cluster.topology_stats();
  EXPECT_EQ(stats.routing_epoch, 4u);
  EXPECT_EQ(stats.topology_changes, 3u);
}

TEST(EpochRoutingTest, FailedMutationsDoNotAdvanceTheEpoch) {
  CacheCluster cluster(2, 1000);
  ASSERT_TRUE(cluster.RemoveServer(0).ok());
  EXPECT_EQ(cluster.routing_epoch(), 2u);

  EXPECT_FALSE(cluster.RemoveServer(0).ok()) << "already removed";
  EXPECT_FALSE(cluster.RemoveServer(1).ok()) << "last active server";
  EXPECT_FALSE(cluster.RemoveServer(9).ok()) << "unknown id";
  EXPECT_FALSE(cluster.RejoinServer(1).ok()) << "still active";
  EXPECT_FALSE(cluster.RejoinServer(9).ok()) << "unknown id";
  EXPECT_EQ(cluster.routing_epoch(), 2u);
  EXPECT_EQ(cluster.topology_stats().topology_changes, 1u);
}

TEST(EpochRoutingTest, ClientRecoversFromStaleViewWithOneRefresh) {
  CacheCluster cluster(2, 500);
  FrontendClient client(&cluster, nullptr);  // cacheless: every read fenced
  EXPECT_EQ(client.route_view_epoch(), 1u);

  // Warm the protocol once, then mutate the topology behind the client's
  // back.
  client.Get(3);
  cluster.AddServer();
  ASSERT_EQ(cluster.routing_epoch(), 2u);
  EXPECT_EQ(client.route_view_epoch(), 1u) << "view refreshes lazily";

  workload::Op read{17, workload::OpType::kRead};
  FrontendClient::OpOutcome outcome = client.ApplyDetailed(read);
  EXPECT_EQ(outcome.epoch_mismatches, 1u)
      << "first fenced request after the change must be rejected";
  EXPECT_EQ(client.route_view_epoch(), 2u);
  EXPECT_EQ(client.stats().epoch_mismatches, 1u);
  EXPECT_EQ(client.stats().route_refreshes, 1u);
  EXPECT_EQ(client.Get(17), StorageLayer::InitialValue(17))
      << "reads stay correct across the refresh";

  // Subsequent ops carry the fresh epoch: no further mismatches.
  FrontendClient::OpOutcome again = client.ApplyDetailed(read);
  EXPECT_EQ(again.epoch_mismatches, 0u);
}

TEST(EpochRoutingTest, ExhaustedRefreshBudgetFailsOverToStorage) {
  CacheCluster cluster(2, 500);
  FrontendClient client(&cluster, nullptr);
  FailurePolicy policy;
  policy.max_route_refreshes = 0;  // pathological: never allowed to refresh
  client.SetFaultInjector(nullptr, 0, policy);

  client.Get(3);
  cluster.AddServer();

  uint64_t storage_reads_before = client.stats().storage_reads;
  workload::Op read{17, workload::OpType::kRead};
  FrontendClient::OpOutcome outcome = client.ApplyDetailed(read);
  EXPECT_EQ(outcome.epoch_mismatches, 1u);
  EXPECT_FALSE(outcome.backend_contacted);
  EXPECT_TRUE(outcome.storage_accessed);
  EXPECT_EQ(client.stats().failovers, 1u)
      << "a read that cannot re-route degrades to authoritative storage";
  EXPECT_EQ(client.stats().storage_reads, storage_reads_before + 1);
  EXPECT_EQ(client.stats().route_refreshes, 0u);
}

TEST(EpochRoutingTest, ExhaustedInvalidationEscalatesToColdRestart) {
  CacheCluster cluster(2, 500);
  FrontendClient client(&cluster, nullptr);
  FailurePolicy policy;
  policy.max_route_refreshes = 0;
  client.SetFaultInjector(nullptr, 0, policy);

  client.Get(3);
  cluster.AddServer();

  // The update's invalidation cannot be delivered under a stale view and
  // may not be dropped silently — the owner is cold-restarted so the
  // no-stale-read contract survives.
  ServerId owner = cluster.OwnerOf(17);
  uint64_t generation_before = cluster.server_generation(owner);
  client.Set(17, 999);
  EXPECT_EQ(client.stats().lost_invalidations, 1u);
  EXPECT_EQ(client.stats().forced_restarts, 1u);
  EXPECT_EQ(cluster.server_generation(owner), generation_before + 1);
  EXPECT_EQ(client.Get(17), 999) << "no stale read after the escalation";
}

TEST(EpochRoutingTest, SerialRingAccessStaysValidAcrossMutations) {
  // The ring() accessor is debug-asserted against *concurrent* mutations;
  // serial use between mutations is the supported contract.
  CacheCluster cluster(3, 1000);
  cluster.AddServer();
  ASSERT_TRUE(cluster.RemoveServer(0).ok());
  const ConsistentHashRing& ring = cluster.ring();
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_NE(ring.ServerFor(key), 0u);
    EXPECT_EQ(ring.ServerFor(key), cluster.OwnerOf(key));
  }
}

// Regression for the acceptance criterion: a live RemoveServer under
// concurrent traffic must surface as nonzero EpochMismatch trace events —
// proof the fencing actually fires in the wild, not just in unit setups.
TEST(EpochRoutingTest, LiveRemoveServerUnderTrafficYieldsEpochMismatches) {
  CacheCluster cluster(4, 2000);
  FrontendClient client(&cluster, nullptr);
  metrics::EventTracer tracer(4096, /*client=*/0);
  client.SetTracer(&tracer);

  std::atomic<bool> removed{false};
  std::thread driver([&] {
    for (uint64_t op = 0; op < 50000; ++op) {
      client.Get(op % 2000);
      // Park until the main thread has removed the shard, so some traffic
      // is guaranteed to run against the mutated topology.
      while (op == 1000 && !removed.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  });

  ASSERT_TRUE(cluster.RemoveServer(2).ok());
  removed.store(true, std::memory_order_release);
  driver.join();

  EXPECT_GT(client.stats().epoch_mismatches, 0u);
  EXPECT_GT(client.stats().route_refreshes, 0u);
  EXPECT_GT(cluster.topology_stats().epoch_rejects, 0u);

  uint64_t mismatch_events = 0;
  for (const metrics::TraceEvent& event : tracer.Events()) {
    if (event.type == metrics::TraceEventType::kEpochMismatch) {
      ++mismatch_events;
    }
  }
  EXPECT_GT(mismatch_events, 0u)
      << "epoch mismatches must be observable in the structured trace";

  // And the handoff kept reads correct throughout: spot-check ownership.
  for (uint64_t key = 0; key < 2000; key += 97) {
    EXPECT_NE(cluster.OwnerOf(key), 2u);
  }
}

}  // namespace
}  // namespace cot::cluster
