#include <gtest/gtest.h>

#include "cluster/backend_server.h"
#include "cluster/cache_cluster.h"
#include "cluster/storage_layer.h"

namespace cot::cluster {
namespace {

TEST(BackendServerTest, MissThenSetThenHit) {
  BackendServer server;
  EXPECT_FALSE(server.Get(1).has_value());
  server.Set(1, 11);
  auto v = server.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(server.lookup_count(), 2u);
  EXPECT_EQ(server.hit_count(), 1u);
  EXPECT_EQ(server.set_count(), 1u);
}

TEST(BackendServerTest, EveryLookupCountsAsLoad) {
  // The paper's load metric counts lookups regardless of hit/miss.
  BackendServer server;
  for (int i = 0; i < 10; ++i) server.Get(static_cast<uint64_t>(i));
  EXPECT_EQ(server.lookup_count(), 10u);
  EXPECT_EQ(server.hit_count(), 0u);
}

TEST(BackendServerTest, DeleteInvalidates) {
  BackendServer server;
  server.Set(1, 11);
  EXPECT_TRUE(server.Delete(1));
  EXPECT_FALSE(server.Get(1).has_value());
  EXPECT_FALSE(server.Delete(1));
  EXPECT_EQ(server.delete_count(), 1u);
}

TEST(BackendServerTest, ResetCountersKeepsContent) {
  BackendServer server;
  server.Set(1, 11);
  server.Get(1);
  server.ResetCounters();
  EXPECT_EQ(server.lookup_count(), 0u);
  EXPECT_EQ(server.size(), 1u);
}

TEST(BackendServerTest, BoundedModeEvictsUnderPressure) {
  BackendServer server(/*max_items=*/4);
  for (uint64_t k = 0; k < 10; ++k) server.Set(k, k);
  EXPECT_LE(server.size(), 4u);
  EXPECT_EQ(server.eviction_count(), 6u);
}

TEST(BackendServerTest, BoundedModeEvictsLeastRecentlyUsed) {
  BackendServer server(/*max_items=*/3);
  server.Set(1, 1);
  server.Set(2, 2);
  server.Set(3, 3);
  server.Get(1);      // 1 is MRU
  server.Set(4, 4);   // evicts 2 (LRU)
  EXPECT_TRUE(server.Get(1).has_value());
  EXPECT_FALSE(server.Get(2).has_value());
  EXPECT_TRUE(server.Get(3).has_value());
  EXPECT_TRUE(server.Get(4).has_value());
}

TEST(BackendServerTest, BoundedModeOverwriteDoesNotEvict) {
  BackendServer server(/*max_items=*/2);
  server.Set(1, 1);
  server.Set(2, 2);
  server.Set(1, 11);  // overwrite
  EXPECT_EQ(server.size(), 2u);
  EXPECT_EQ(server.eviction_count(), 0u);
  EXPECT_EQ(*server.Get(1), 11u);
}

TEST(BackendServerTest, BoundedModeDeleteFreesSlot) {
  BackendServer server(/*max_items=*/2);
  server.Set(1, 1);
  server.Set(2, 2);
  EXPECT_TRUE(server.Delete(1));
  server.Set(3, 3);
  EXPECT_EQ(server.eviction_count(), 0u);
  EXPECT_EQ(server.size(), 2u);
}

TEST(BackendServerTest, ClearDropsEverything) {
  BackendServer server;
  server.Set(1, 11);
  server.Get(1);
  server.Clear();
  EXPECT_EQ(server.size(), 0u);
  EXPECT_EQ(server.lookup_count(), 0u);
}

TEST(StorageLayerTest, UnwrittenKeysReadDeterministicInitialValue) {
  StorageLayer storage(100);
  EXPECT_EQ(storage.Get(5), StorageLayer::InitialValue(5));
  EXPECT_EQ(storage.Get(5), storage.Get(5));
  EXPECT_NE(storage.Get(5), storage.Get(6));
}

TEST(StorageLayerTest, SetOverridesValue) {
  StorageLayer storage(100);
  storage.Set(5, 999);
  EXPECT_EQ(storage.Get(5), 999u);
}

TEST(StorageLayerTest, CountsReadsAndWrites) {
  StorageLayer storage(10);
  storage.Get(1);
  storage.Get(2);
  storage.Set(1, 1);
  EXPECT_EQ(storage.read_count(), 2u);
  EXPECT_EQ(storage.write_count(), 1u);
  EXPECT_EQ(storage.key_space_size(), 10u);
}

TEST(CacheClusterTest, AggregatesPerServerLoads) {
  CacheCluster cluster(4, 1000);
  cluster.server(0).Get(1);
  cluster.server(0).Get(2);
  cluster.server(3).Get(3);
  auto loads = cluster.PerServerLookups();
  EXPECT_EQ(loads, (std::vector<uint64_t>{2, 0, 0, 1}));
  cluster.ResetServerCounters();
  EXPECT_EQ(cluster.PerServerLookups(),
            (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(CacheClusterTest, RingMatchesServerCount) {
  CacheCluster cluster(8, 1000);
  EXPECT_EQ(cluster.server_count(), 8u);
  EXPECT_EQ(cluster.ring().server_count(), 8u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_LT(cluster.ring().ServerFor(k), 8u);
  }
}

}  // namespace
}  // namespace cot::cluster
