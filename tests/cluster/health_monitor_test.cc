// HealthMonitor unit tests: P-squared streaming quantile accuracy (exact
// below five samples, close to the true quantile in the stream regime),
// EWMA health scoring, adaptive deadline / hedge-delay floors, lameduck
// hysteresis with the min-observation gate, and the probe cadence that
// keeps a quarantined shard observable.

#include "cluster/health_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace cot::cluster {
namespace {

double ExactQuantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

TEST(P2QuantileTest, ZeroBeforeObservationsExactBelowFiveSamples) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.Value(), 0.0);
  q.Observe(30.0);
  EXPECT_DOUBLE_EQ(q.Value(), 30.0);
  q.Observe(10.0);
  q.Observe(20.0);
  // Exact small-sample quantile: rank ceil(0.5 * 3) = 2 of {10, 20, 30}.
  EXPECT_DOUBLE_EQ(q.Value(), 20.0);
  EXPECT_EQ(q.count(), 3u);
}

TEST(P2QuantileTest, TracksUniformStreamQuantiles) {
  // 20k uniform samples in [0, 1000): the P2 estimate of p50 and p99 must
  // land within a few percent of the exact order statistic.
  for (double p : {0.5, 0.9, 0.99}) {
    SCOPED_TRACE(p);
    P2Quantile q(p);
    std::vector<double> samples;
    Rng rng(0xbeef + static_cast<uint64_t>(p * 100));
    for (int i = 0; i < 20000; ++i) {
      double x = static_cast<double>(rng.NextUint64() % 1000000) / 1000.0;
      samples.push_back(x);
      q.Observe(x);
    }
    double exact = ExactQuantile(samples, p);
    EXPECT_NEAR(q.Value(), exact, 30.0)
        << "p=" << p << " exact=" << exact << " est=" << q.Value();
  }
}

TEST(P2QuantileTest, TracksBimodalTail) {
  // The gray regime: 95% fast (~100us), 5% slow (~1000us). p99 must land
  // in the slow mode, not between the modes.
  P2Quantile q(0.99);
  Rng rng(0x5109);
  for (int i = 0; i < 50000; ++i) {
    bool slow = rng.NextUint64() % 100 < 5;
    double x = slow ? 1000.0 + static_cast<double>(rng.NextUint64() % 100)
                    : 100.0 + static_cast<double>(rng.NextUint64() % 20);
    q.Observe(x);
  }
  EXPECT_GT(q.Value(), 900.0);
  EXPECT_LT(q.Value(), 1150.0);
}

TEST(HealthMonitorTest, HealthyDefaultsBeforeObservations) {
  HealthConfig config;
  HealthMonitor monitor(4, config);
  EXPECT_DOUBLE_EQ(monitor.Score(2), 1.0);
  EXPECT_DOUBLE_EQ(monitor.QuantileUs(2), 0.0);
  EXPECT_DOUBLE_EQ(monitor.DeadlineUs(2), config.deadline_floor_us);
  EXPECT_DOUBLE_EQ(monitor.HedgeDelayUs(), config.hedge_floor_us);
  EXPECT_FALSE(monitor.IsLameduck(2));
  EXPECT_EQ(monitor.lameduck_count(), 0u);
  // Healthy shards are always probed (every read goes to the shard).
  EXPECT_TRUE(monitor.NextReadProbes(2));
  EXPECT_TRUE(monitor.NextReadProbes(2));
}

TEST(HealthMonitorTest, AdaptiveDeadlineTracksShardQuantile) {
  HealthConfig config;
  HealthMonitor monitor(2, config);
  // Shard 0 serves at a steady 394us: p99 ~ 394, so k * p99 ~ 1182 beats
  // the 1000us floor.
  for (int i = 0; i < 100; ++i) monitor.Observe(0, 394.0, 394.0);
  EXPECT_NEAR(monitor.QuantileUs(0), 394.0, 1.0);
  EXPECT_NEAR(monitor.DeadlineUs(0), config.deadline_k * 394.0, 5.0);
  // A fast shard (100us) stays floored — deadlines never tighten below
  // the legacy fixed timeout.
  for (int i = 0; i < 100; ++i) monitor.Observe(1, 100.0, 394.0);
  EXPECT_DOUBLE_EQ(monitor.DeadlineUs(1), config.deadline_floor_us);
}

TEST(HealthMonitorTest, HedgeDelayUsesRobustClusterMedian) {
  // Nine healthy shards and one 10x gray shard: the cluster p50 barely
  // moves, so the hedge delay stays anchored to the healthy latency —
  // exactly why the hedge reference is the median and not the mean or p99.
  HealthConfig config;
  HealthMonitor monitor(10, config);
  for (int round = 0; round < 100; ++round) {
    for (uint32_t s = 0; s < 9; ++s) monitor.Observe(s, 394.0, 394.0);
    monitor.Observe(9, 3940.0, 394.0);
  }
  EXPECT_NEAR(monitor.HedgeDelayUs(), config.hedge_k * 394.0, 100.0);
}

TEST(HealthMonitorTest, LameduckEntryNeedsMinObservations) {
  HealthConfig config;
  HealthMonitor monitor(1, config);
  // 10x slow from the first observation: the EWMA sinks below the enter
  // threshold quickly, but quarantine must wait for min_observations — a
  // couple of outliers on a cold shard are not a diagnosis.
  for (uint64_t i = 0; i + 1 < config.min_observations; ++i) {
    EXPECT_EQ(monitor.Observe(0, 3940.0, 394.0),
              HealthMonitor::Transition::kNone)
        << "observation " << i;
    EXPECT_FALSE(monitor.IsLameduck(0));
  }
  EXPECT_EQ(monitor.Observe(0, 3940.0, 394.0),
            HealthMonitor::Transition::kEnterLameduck);
  EXPECT_TRUE(monitor.IsLameduck(0));
  EXPECT_EQ(monitor.lameduck_count(), 1u);
  // Staying slow reports no further transition — entry fires once.
  EXPECT_EQ(monitor.Observe(0, 3940.0, 394.0),
            HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.lameduck_count(), 1u);
}

TEST(HealthMonitorTest, HysteresisRequiresClearRecovery) {
  HealthConfig config;
  HealthMonitor monitor(1, config);
  while (!monitor.IsLameduck(0)) monitor.Observe(0, 3940.0, 394.0);
  // Mildly degraded probes (score sample ~0.5, between the two
  // thresholds) must NOT exit — that is the hysteresis band.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(monitor.Observe(0, 788.0, 394.0),
              HealthMonitor::Transition::kNone);
    EXPECT_TRUE(monitor.IsLameduck(0));
  }
  // Full-speed probes push the score above lameduck_exit: exactly one
  // exit transition, then quiet.
  HealthMonitor::Transition t = HealthMonitor::Transition::kNone;
  int healthy = 0;
  while (t != HealthMonitor::Transition::kExitLameduck && healthy < 100) {
    t = monitor.Observe(0, 394.0, 394.0);
    ++healthy;
  }
  EXPECT_EQ(t, HealthMonitor::Transition::kExitLameduck);
  EXPECT_FALSE(monitor.IsLameduck(0));
  EXPECT_EQ(monitor.lameduck_count(), 0u);
  EXPECT_EQ(monitor.Observe(0, 394.0, 394.0),
            HealthMonitor::Transition::kNone);
}

TEST(HealthMonitorTest, ProbeCadenceInLameduck) {
  HealthConfig config;
  config.probe_interval = 4;
  HealthMonitor monitor(1, config);
  while (!monitor.IsLameduck(0)) monitor.Observe(0, 3940.0, 394.0);
  // Every 4th read probes; the rest bypass. 20 reads => exactly 5 probes,
  // at a regular cadence.
  int probes = 0;
  for (int i = 0; i < 20; ++i) {
    if (monitor.NextReadProbes(0)) ++probes;
  }
  EXPECT_EQ(probes, 5);
}

TEST(HealthMonitorTest, GrowsForChurnAddedShards) {
  HealthConfig config;
  HealthMonitor monitor(2, config);
  // Observing a shard id beyond the initial tier (churn added it) must
  // grow state, not crash or misattribute.
  EXPECT_EQ(monitor.Observe(7, 394.0, 394.0),
            HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.observations(7), 1u);
  EXPECT_EQ(monitor.observations(1), 0u);
  EXPECT_DOUBLE_EQ(monitor.Score(7), 1.0);
}

TEST(HealthMonitorTest, DeterministicAcrossInstances) {
  // Two monitors fed the same stream agree on every reported value — the
  // property the byte-identical-at-any-thread-count contract rests on.
  HealthConfig config;
  HealthMonitor a(4, config);
  HealthMonitor b(4, config);
  Rng rng(0xdead);
  for (int i = 0; i < 5000; ++i) {
    ServerId shard = rng.NextUint64() % 4;
    double latency = 200.0 + static_cast<double>(rng.NextUint64() % 4000);
    EXPECT_EQ(a.Observe(shard, latency, 394.0),
              b.Observe(shard, latency, 394.0));
  }
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(a.Score(s), b.Score(s));
    EXPECT_DOUBLE_EQ(a.QuantileUs(s), b.QuantileUs(s));
    EXPECT_DOUBLE_EQ(a.DeadlineUs(s), b.DeadlineUs(s));
    EXPECT_EQ(a.IsLameduck(s), b.IsLameduck(s));
  }
  EXPECT_DOUBLE_EQ(a.HedgeDelayUs(), b.HedgeDelayUs());
}

}  // namespace
}  // namespace cot::cluster
