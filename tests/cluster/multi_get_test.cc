// Tests for the batched read path: FrontendClient::MultiGet and the fenced
// BackendServer::MultiGet underneath it. The contract under test is the one
// DESIGN.md states — a batch is logically equivalent to N sequential Gets
// (same local probes and fills, same per-key accounting, op clock +1 per
// key) with only the transport amortized — so most tests here are
// differentials: the same key stream through a batching client and a
// per-key client on twin clusters must leave identical traffic counters,
// identical shard contents, and identical values.
//
// Known, documented divergences (NOT covered by exact differentials):
// fault draws happen once per sub-batch instead of once per key, and an
// epoch-mismatch rejection counts once per rejected sub-batch instead of
// once per key. Those paths get behavioural tests instead.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "cache/lru_cache.h"
#include "cluster/backend_server.h"
#include "cluster/cache_cluster.h"
#include "cluster/consistent_hash_ring.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "cluster/routing.h"
#include "core/cot_cache.h"
#include "metrics/event_tracer.h"
#include "util/hash.h"
#include "util/random.h"

namespace cot::cluster {
namespace {

void ExpectStatsEqual(const FrontendStats& batch, const FrontendStats& seq) {
  EXPECT_EQ(batch.reads, seq.reads);
  EXPECT_EQ(batch.updates, seq.updates);
  EXPECT_EQ(batch.local_hits, seq.local_hits);
  EXPECT_EQ(batch.backend_lookups, seq.backend_lookups);
  EXPECT_EQ(batch.backend_hits, seq.backend_hits);
  EXPECT_EQ(batch.storage_reads, seq.storage_reads);
  EXPECT_EQ(batch.failed_requests, seq.failed_requests);
  EXPECT_EQ(batch.retries, seq.retries);
  EXPECT_EQ(batch.failovers, seq.failovers);
  EXPECT_EQ(batch.degraded_ops, seq.degraded_ops);
  EXPECT_EQ(batch.invalidations, seq.invalidations);
  EXPECT_EQ(batch.breaker_trips, seq.breaker_trips);
  EXPECT_EQ(batch.epoch_mismatches, seq.epoch_mismatches);
  EXPECT_EQ(batch.route_refreshes, seq.route_refreshes);
}

void ExpectClusterStateEqual(const CacheCluster& a, const CacheCluster& b) {
  ASSERT_EQ(a.ring().server_count(), b.ring().server_count());
  for (ServerId sid = 0; sid < a.ring().server_count(); ++sid) {
    EXPECT_EQ(a.server(sid).size(), b.server(sid).size()) << "shard " << sid;
    EXPECT_EQ(a.server(sid).lookup_count(), b.server(sid).lookup_count())
        << "shard " << sid;
    EXPECT_EQ(a.server(sid).hit_count(), b.server(sid).hit_count())
        << "shard " << sid;
    EXPECT_EQ(a.server(sid).set_count(), b.server(sid).set_count())
        << "shard " << sid;
  }
}

/// Drives the same `keys` stream through a batching client (chunks of
/// `batch`) and a per-key client on twin clusters, then asserts values,
/// client stats, per-shard epoch/cumulative counters, and shard-side
/// traffic all match exactly.
void RunDifferential(std::unique_ptr<cache::Cache> batch_cache,
                     std::unique_ptr<cache::Cache> seq_cache,
                     const std::vector<cache::Key>& keys, size_t batch) {
  CacheCluster batch_cluster(8, 2000);
  CacheCluster seq_cluster(8, 2000);
  FrontendClient batch_client(&batch_cluster, std::move(batch_cache));
  FrontendClient seq_client(&seq_cluster, std::move(seq_cache));

  for (size_t i = 0; i < keys.size(); i += batch) {
    size_t n = std::min(batch, keys.size() - i);
    std::vector<cache::Value> got = batch_client.MultiGet(
        std::span<const cache::Key>(&keys[i], n));
    ASSERT_EQ(got.size(), n);
    for (size_t j = 0; j < n; ++j) {
      cache::Value want = seq_client.Get(keys[i + j]);
      ASSERT_EQ(got[j], want) << "key " << keys[i + j] << " at " << (i + j);
    }
  }

  EXPECT_EQ(batch_client.op_clock(), seq_client.op_clock());
  ExpectStatsEqual(batch_client.stats(), seq_client.stats());
  EXPECT_EQ(batch_client.epoch_lookups(), seq_client.epoch_lookups());
  EXPECT_EQ(batch_client.cumulative_lookups(),
            seq_client.cumulative_lookups());
  ExpectClusterStateEqual(batch_cluster, seq_cluster);
}

std::vector<cache::Key> RandomKeys(uint64_t seed, size_t n,
                                   uint64_t key_space) {
  Rng rng(seed);
  std::vector<cache::Key> keys(n);
  for (auto& k : keys) k = rng.NextBelow(key_space);
  return keys;
}

TEST(MultiGetTest, CachelessDifferentialAcrossBatchSizes) {
  // Dense key space (500 keys, 4000 reads) so batches repeat keys both
  // across and within a batch — a cacheless client pays one backend
  // lookup per occurrence sequentially, and the sub-batch reproduces that
  // exactly.
  auto keys = RandomKeys(11, 4000, 500);
  for (size_t batch : {1u, 2u, 7u, 16u, 64u}) {
    SCOPED_TRACE(batch);
    RunDifferential(nullptr, nullptr, keys, batch);
  }
}

TEST(MultiGetTest, NoEvictLruDifferentialAcrossBatchSizes) {
  // A local cache big enough to never evict: the batch's probe/fill split
  // (probe all keys, then fill misses in key order with duplicate slots
  // re-probed) must be invisible — byte-identical stats.
  auto keys = RandomKeys(12, 4000, 500);
  for (size_t batch : {1u, 3u, 16u, 64u}) {
    SCOPED_TRACE(batch);
    RunDifferential(std::make_unique<cache::LruCache>(1024),
                    std::make_unique<cache::LruCache>(1024), keys, batch);
  }
}

TEST(MultiGetTest, WithinBatchDuplicatesCountLikeSequentialGets) {
  // The sharp edge of batch/sequential equivalence: a duplicate inside one
  // batch. Sequentially the first Get fills the local cache and the
  // second hits it; the batch must defer the duplicate past the fill phase
  // and re-probe, producing the same hit.
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(64));
  const cache::Key k1 = 42, k2 = 7;
  std::vector<cache::Key> batch = {k1, k1, k2, k1, k2};
  std::vector<cache::Value> got = client.MultiGet(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], StorageLayer::InitialValue(batch[i])) << i;
  }
  // Exactly one backend visit per distinct key; every repeat is a local
  // hit, just as five sequential Gets would produce.
  EXPECT_EQ(client.stats().reads, 5u);
  EXPECT_EQ(client.stats().backend_lookups, 2u);
  EXPECT_EQ(client.stats().local_hits, 3u);
  EXPECT_EQ(client.stats().storage_reads, 2u);
  EXPECT_EQ(client.op_clock(), 5u);
}

TEST(MultiGetTest, SmallCotCacheValuesAlwaysAuthoritative) {
  // With a small evicting CoT cache the batch's probe-then-fill ordering
  // can admit/evict microscopically differently from sequential Gets
  // (documented divergence), but values must always be authoritative.
  CacheCluster cluster(8, 2000);
  FrontendClient client(
      &cluster, std::make_unique<core::CotCache>(32, 128));
  auto keys = RandomKeys(13, 3000, 400);
  for (size_t i = 0; i < keys.size(); i += 16) {
    size_t n = std::min<size_t>(16, keys.size() - i);
    auto got = client.MultiGet(std::span<const cache::Key>(&keys[i], n));
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(got[j], cluster.storage().Get(keys[i + j]));
    }
  }
  // Bookkeeping is still per key.
  EXPECT_EQ(client.stats().reads, keys.size());
  EXPECT_EQ(client.op_clock(), keys.size());
  EXPECT_EQ(client.stats().local_hits + client.stats().backend_lookups,
            keys.size());
}

TEST(MultiGetTest, EmptyAndSingletonBatches) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  EXPECT_TRUE(client.MultiGet({}).empty());
  EXPECT_EQ(client.op_clock(), 0u);
  EXPECT_EQ(client.stats().reads, 0u);

  std::vector<cache::Key> one = {9};
  auto got = client.MultiGet(one);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], StorageLayer::InitialValue(9));
  EXPECT_EQ(client.op_clock(), 1u);
  EXPECT_EQ(client.stats().backend_lookups, 1u);
}

/// Trivial deterministic router: key % servers. Exercises the router
/// fallback, where MultiGet degrades to per-key Gets by contract.
class ModRouter : public RoutingPolicy {
 public:
  explicit ModRouter(uint32_t servers) : servers_(servers) {}
  ServerId Route(uint64_t key, const RouteView& /*view*/) override {
    return static_cast<ServerId>(key % servers_);
  }

 private:
  uint32_t servers_;
};

TEST(MultiGetTest, RouterFallbackMatchesPerKeyGets) {
  CacheCluster batch_cluster(4, 1000);
  CacheCluster seq_cluster(4, 1000);
  ModRouter batch_router(4);
  ModRouter seq_router(4);
  FrontendClient batch_client(&batch_cluster,
                              std::make_unique<cache::LruCache>(256));
  FrontendClient seq_client(&seq_cluster,
                            std::make_unique<cache::LruCache>(256));
  batch_client.SetRouter(&batch_router);
  seq_client.SetRouter(&seq_router);

  auto keys = RandomKeys(14, 1000, 300);
  for (size_t i = 0; i < keys.size(); i += 8) {
    size_t n = std::min<size_t>(8, keys.size() - i);
    auto got =
        batch_client.MultiGet(std::span<const cache::Key>(&keys[i], n));
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(got[j], seq_client.Get(keys[i + j]));
    }
  }
  ExpectStatsEqual(batch_client.stats(), seq_client.stats());
  EXPECT_EQ(batch_client.cumulative_lookups(),
            seq_client.cumulative_lookups());
  ExpectClusterStateEqual(batch_cluster, seq_cluster);
}

TEST(MultiGetTest, CrashWindowDegradesToStorageAndStaysCorrect) {
  // A shard crashed for the whole run: batched reads to it retry, trip
  // the breaker, and fail over to storage — every value still
  // authoritative, every key still counted as a read. (Fault draws are
  // per sub-batch, a documented divergence from per-key Gets, so this is
  // a behavioural test, not a differential.)
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  const ServerId dead = 1;
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{dead, FaultType::kCrash,
                                       /*start_op=*/0,
                                       /*end_op=*/1000000});
  FaultInjector injector(schedule);
  FailurePolicy policy;
  policy.breaker_failure_threshold = 2;
  policy.breaker_cooldown_ops = 32;
  client.SetFaultInjector(&injector, /*client_id=*/0, policy);

  auto keys = RandomKeys(15, 512, 800);
  uint64_t dead_keys = 0;
  for (size_t i = 0; i < keys.size(); i += 16) {
    auto got = client.MultiGet(std::span<const cache::Key>(&keys[i], 16));
    for (size_t j = 0; j < 16; ++j) {
      ASSERT_EQ(got[j], cluster.storage().Get(keys[i + j]));
      if (cluster.ring().ServerFor(keys[i + j]) == dead) ++dead_keys;
    }
  }
  ASSERT_GT(dead_keys, 0u);
  EXPECT_EQ(client.stats().breaker_trips, 1u);
  // Every key owned by the dead shard was served anyway, from storage —
  // either as a failover (delivery failed) or a degraded read (breaker
  // open, shard never contacted).
  EXPECT_EQ(client.stats().failovers + client.stats().degraded_ops,
            dead_keys);
  EXPECT_GT(client.stats().degraded_ops, 0u);
  EXPECT_EQ(cluster.server(dead).lookup_count(), 0u);
}

TEST(MultiGetTest, EpochMismatchMidBatchRefreshesAndRecovers) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  auto keys = RandomKeys(16, 64, 900);
  // Warm pass, then a topology change behind the client's back.
  client.MultiGet(keys);
  cluster.AddServer();
  ASSERT_NE(client.route_view_epoch(),
            cluster.ring_snapshot_synced()->epoch);

  auto got = client.MultiGet(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(got[i], cluster.storage().Get(keys[i]));
  }
  // Every stale sub-batch was rejected whole (one mismatch per rejected
  // request — it IS one request), one refresh serviced the round, and the
  // client's view is current again.
  EXPECT_GE(client.stats().epoch_mismatches, 1u);
  EXPECT_LE(client.stats().epoch_mismatches, 4u);  // <= old shard count
  EXPECT_EQ(client.stats().route_refreshes, 1u);
  EXPECT_EQ(client.route_view_epoch(),
            cluster.ring_snapshot_synced()->epoch);
  EXPECT_EQ(client.stats().failovers, 0u);

  // Steady state after the refresh: no further mismatches.
  client.MultiGet(keys);
  EXPECT_EQ(client.stats().route_refreshes, 1u);
}

TEST(MultiGetTest, TracerRecordsOneBatchLookupEvent) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(64));
  metrics::EventTracer tracer(1024, /*client=*/0);
  client.SetTracer(&tracer);

  std::vector<cache::Key> keys = {1, 2, 3, 1, 2};  // 2 dup local hits
  client.MultiGet(keys);
  std::vector<metrics::TraceEvent> events;
  for (const auto& e : tracer.Events()) {
    if (e.type == metrics::TraceEventType::kBatchLookup) events.push_back(e);
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].op_clock, 0u);  // stamped at batch entry
  const auto& p =
      std::get<metrics::BatchLookupPayload>(events[0].payload);
  EXPECT_EQ(p.batch_size, 5u);
  EXPECT_EQ(p.local_hits, 2u);
  EXPECT_EQ(p.backend_keys, 3u);
  EXPECT_GE(p.sub_batches, 1u);
  EXPECT_LE(p.sub_batches, 3u);
  EXPECT_EQ(p.local_hits + p.backend_keys, p.batch_size);
}

// The per-sub-batch clock invariant (DESIGN.md "Batched reads"): each
// shard request a batch issues consumes exactly one tick from the batch's
// clock interval [now, now + batch_size), in issue order (sub-batches by
// ascending ServerId). A one-tick fault window can therefore hit exactly
// one sub-batch — and which one is determined by issue order, not batch
// entry time.
TEST(MultiGetTest, EachSubBatchConsumesOneFaultClockTick) {
  CacheCluster cluster(4, 1000);
  // Two keys on two distinct shards, sidA < sidB: the sidA sub-batch is
  // issued first (tick 0), sidB second (tick 1).
  cache::Key key_a = 0, key_b = 0;
  ServerId sid_a = 0, sid_b = 0;
  bool found = false;
  for (cache::Key a = 0; a < 100 && !found; ++a) {
    for (cache::Key b = 0; b < 100 && !found; ++b) {
      if (cluster.ring().ServerFor(a) < cluster.ring().ServerFor(b)) {
        key_a = a;
        sid_a = cluster.ring().ServerFor(a);
        key_b = b;
        sid_b = cluster.ring().ServerFor(b);
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  // Window covering exactly op-clock tick 1 on sidB, certain failure.
  FaultSchedule schedule;
  schedule.events.push_back(
      FaultEvent{sid_b, FaultType::kTransient, /*start_op=*/1,
                 /*end_op=*/2, /*probability=*/1.0});
  {
    FaultInjector injector(schedule);
    FrontendClient client(&cluster, nullptr);
    client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy{});
    const std::vector<cache::Key> batch = {key_a, key_b};
    auto got = client.MultiGet(batch);
    // sidB's sub-batch drew at tick 1 — inside the window — so it failed
    // over; sidA's drew at tick 0 and went through.
    EXPECT_EQ(got[0], cluster.storage().Get(key_a));
    EXPECT_EQ(got[1], cluster.storage().Get(key_b));
    EXPECT_EQ(client.stats().failovers, 1u);
    EXPECT_EQ(cluster.server(sid_a).lookup_count(), 1u);
    EXPECT_EQ(cluster.server(sid_b).lookup_count(), 0u);
  }

  // Converse: the same window moved to tick 0 misses sidB's sub-batch
  // entirely (it draws at tick 1), and sidA fails instead when targeted.
  cluster.ResetServerCounters();
  schedule.events[0].start_op = 0;
  schedule.events[0].end_op = 1;
  {
    FaultInjector injector(schedule);
    FrontendClient client(&cluster, nullptr);
    client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy{});
    const std::vector<cache::Key> batch = {key_a, key_b};
    client.MultiGet(batch);
    EXPECT_EQ(client.stats().failovers, 0u);
    EXPECT_EQ(cluster.server(sid_b).lookup_count(), 1u);
  }

  // A window starting at the batch-end clock can never touch the batch:
  // draws are clamped to [now, now + batch_size).
  cluster.ResetServerCounters();
  schedule.events[0].server = sid_a;
  schedule.events[0].start_op = 2;
  schedule.events[0].end_op = 1000;
  schedule.events.push_back(
      FaultEvent{sid_b, FaultType::kTransient, /*start_op=*/2,
                 /*end_op=*/1000, /*probability=*/1.0});
  {
    FaultInjector injector(schedule);
    FrontendClient client(&cluster, nullptr);
    client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy{});
    const std::vector<cache::Key> batch = {key_a, key_b};
    client.MultiGet(batch);
    EXPECT_EQ(client.stats().failovers, 0u);
    EXPECT_EQ(client.stats().failed_requests, 0u);
  }
}

TEST(BackendServerMultiGetTest, AccountsLikeFencedGetsPlusFills) {
  BackendServer shard;
  shard.Set(1, 100);
  shard.Set(2, 200);
  uint64_t fetched = 0;
  std::vector<cache::Key> keys = {1, 5, 2, 6};
  std::vector<cache::Value> out(keys.size());
  auto result = shard.MultiGet(
      keys, /*client_epoch=*/0,
      [&](cache::Key k) {
        ++fetched;
        return k + 1000;
      },
      out.data());
  EXPECT_EQ(result.status, BackendServer::ShardStatus::kOk);
  EXPECT_EQ(result.hits, 2u);
  EXPECT_EQ(out, (std::vector<cache::Value>{100, 1005, 200, 1006}));
  EXPECT_EQ(fetched, 2u);  // only the misses hit the authoritative layer
  // Counter deltas: one lookup per key, one set per original fill plus one
  // per batch fill.
  EXPECT_EQ(shard.lookup_count(), 4u);
  EXPECT_EQ(shard.hit_count(), 2u);
  EXPECT_EQ(shard.set_count(), 4u);
  EXPECT_EQ(shard.size(), 4u);  // misses were installed
  // The fills are resident now: a second pass is all hits, no fetches.
  auto again = shard.MultiGet(
      keys, 0, [&](cache::Key k) { ++fetched; return k; }, out.data());
  EXPECT_EQ(again.hits, 4u);
  EXPECT_EQ(fetched, 2u);
}

TEST(BackendServerMultiGetTest, StaleEpochRejectsBatchAtomically) {
  BackendServer shard;
  shard.Set(1, 100);
  shard.SetRoutingEpoch(7);
  std::vector<cache::Key> keys = {1, 2};
  std::vector<cache::Value> out(keys.size(), 0);
  bool fetch_called = false;
  auto result = shard.MultiGet(
      keys, /*client_epoch=*/3,
      [&](cache::Key k) {
        fetch_called = true;
        return k;
      },
      out.data());
  EXPECT_EQ(result.status, BackendServer::ShardStatus::kEpochMismatch);
  EXPECT_EQ(result.shard_epoch, 7u);
  // Rejected whole: no fetch, no content change, no per-key counters —
  // exactly one mismatch counted for the one request.
  EXPECT_FALSE(fetch_called);
  EXPECT_EQ(shard.size(), 1u);
  EXPECT_EQ(shard.lookup_count(), 0u);
  EXPECT_EQ(shard.hit_count(), 0u);
  EXPECT_EQ(shard.epoch_mismatch_count(), 1u);
}

TEST(ConsistentHashRingTest, BucketIndexMatchesBinarySearchReference) {
  // The bucket index in ServerFor is new hot-path code; pin it against an
  // independently built sorted-points + lower_bound reference (same point
  // placement function) across add/remove churn.
  struct RefPoint {
    uint64_t position;
    ServerId server;
  };
  auto reference_for = [](const std::vector<RefPoint>& pts, uint64_t key) {
    uint64_t h = Mix64(key);
    auto it = std::lower_bound(
        pts.begin(), pts.end(), h,
        [](const RefPoint& p, uint64_t v) { return p.position < v; });
    if (it == pts.end()) it = pts.begin();
    return it->server;
  };
  auto rebuild = [](const std::vector<ServerId>& servers,
                    uint32_t virtual_nodes) {
    std::vector<RefPoint> pts;
    for (ServerId id : servers) {
      for (uint32_t v = 0; v < virtual_nodes; ++v) {
        pts.push_back(
            RefPoint{HashPair(static_cast<uint64_t>(id) + 1, v), id});
      }
    }
    std::sort(pts.begin(), pts.end(),
              [](const RefPoint& a, const RefPoint& b) {
                if (a.position != b.position) return a.position < b.position;
                return a.server < b.server;
              });
    return pts;
  };

  for (uint32_t virtual_nodes : {1u, 3u, 128u}) {
    SCOPED_TRACE(virtual_nodes);
    ConsistentHashRing ring(4, virtual_nodes);
    std::vector<ServerId> servers = {0, 1, 2, 3};
    Rng rng(99);
    for (int round = 0; round < 6; ++round) {
      auto pts = rebuild(servers, virtual_nodes);
      for (int i = 0; i < 2000; ++i) {
        uint64_t key = rng.NextUint64();
        ASSERT_EQ(ring.ServerFor(key), reference_for(pts, key))
            << "round " << round << " key " << key;
      }
      // Churn: alternately drop a server and add a fresh one.
      if (round % 2 == 0 && servers.size() > 1) {
        ServerId victim = servers[rng.NextBelow(servers.size())];
        ASSERT_TRUE(ring.RemoveServer(victim).ok());
        servers.erase(std::find(servers.begin(), servers.end(), victim));
      } else {
        servers.push_back(ring.AddServer());
      }
    }
  }
}

TEST(ConsistentHashRingTest, BucketIndexSurvivesSparseRing) {
  // Degenerate shapes: a single point (every key wraps to it) and a
  // two-point ring where almost all buckets are empty and borrow the
  // successor's start.
  ConsistentHashRing ring(2, 1);
  ASSERT_TRUE(ring.RemoveServer(1).ok());
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ring.ServerFor(rng.NextUint64()), 0u);
  }
}

}  // namespace
}  // namespace cot::cluster
