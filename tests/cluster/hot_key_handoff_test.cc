// Satellite coverage for hot-key replication under topology churn: an
// update must reach *every* replica of a hot key (HotKeyReplicator's
// AllReplicas set), including while a topology mutation drains misowned
// copies, and an undeliverable replica invalidation must escalate to the
// PR-2 loss fencing (forced cold restart) rather than leaving a stale
// copy behind.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "cluster/hot_key_replicator.h"

namespace cot::cluster {
namespace {

constexpr uint64_t kKeys = 500;
constexpr uint64_t kHotKey = 17;

/// View over the cluster's current (quiescent) ring for control-plane
/// calls made outside a client.
RouteView ViewOf(const CacheCluster& cluster) {
  return RouteView{cluster.routing_epoch(), &cluster.ring()};
}

/// Makes `key` hot enough for the replicator to build a replica set.
void ReplicateKey(HotKeyReplicator& replicator, const CacheCluster& cluster,
                  uint64_t key) {
  ServerId home = cluster.OwnerOf(key);
  for (int i = 0; i < 1000; ++i) replicator.OnLookup(key, home);
  replicator.EndEpoch(ViewOf(cluster));
  ASSERT_TRUE(replicator.IsReplicated(key));
}

TEST(HotKeyHandoffTest, UpdateInvalidatesEveryReplica) {
  CacheCluster cluster(4, kKeys);
  HotKeyReplicator replicator(4, /*hot_share=*/0.05, /*gamma=*/3);
  ReplicateKey(replicator, cluster, kHotKey);

  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&replicator);

  // Spread lookups across the replica set so several shards hold a copy.
  std::vector<ServerId> replicas = replicator.AllReplicas(kHotKey, ViewOf(cluster));
  ASSERT_GE(replicas.size(), 2u);
  for (size_t i = 0; i < 2 * replicas.size(); ++i) client.Get(kHotKey);

  client.Set(kHotKey, 777);
  for (ServerId sid : replicas) {
    EXPECT_FALSE(cluster.server(sid).Get(kHotKey).has_value())
        << "replica " << sid << " kept a stale copy past the update";
  }
  for (size_t i = 0; i < replicas.size(); ++i) {
    EXPECT_EQ(client.Get(kHotKey), 777u)
        << "every replica routing choice must see the new value";
  }
}

TEST(HotKeyHandoffTest, HandoffDrainsReplicaCopiesWithoutStaleReads) {
  CacheCluster cluster(4, kKeys);
  HotKeyReplicator replicator(4, 0.05, /*gamma=*/3);
  ReplicateKey(replicator, cluster, kHotKey);

  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&replicator);
  std::vector<ServerId> replicas = replicator.AllReplicas(kHotKey, ViewOf(cluster));
  for (size_t i = 0; i < 2 * replicas.size(); ++i) client.Get(kHotKey);

  // Grow the tier mid-stream. Migration flushes misowned copies (the
  // FlushMisownedKeys semantics): replica copies off the ring owner drain
  // to the owner, with values re-read from authoritative storage.
  cluster.AddServer();
  ServerId ring_owner = cluster.OwnerOf(kHotKey);
  for (ServerId id = 0; id < cluster.server_count(); ++id) {
    if (id == ring_owner) continue;
    EXPECT_FALSE(cluster.server(id).Get(kHotKey).has_value())
        << "migration must not leave replica copies on non-owners";
  }

  // The update/read protocol keeps working through the replica set: the
  // update deletes on every replica, and subsequent reads (whichever
  // replica they hash to) serve the fresh value.
  client.Set(kHotKey, 4242);
  for (size_t i = 0; i < 2 * replicas.size(); ++i) {
    EXPECT_EQ(client.Get(kHotKey), 4242u)
        << "no stale read through any replica during the handoff window";
  }
}

TEST(HotKeyHandoffTest, UndeliverableReplicaInvalidationEscalates) {
  CacheCluster cluster(4, kKeys);
  HotKeyReplicator replicator(4, 0.05, /*gamma=*/3);
  ReplicateKey(replicator, cluster, kHotKey);

  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&replicator);
  std::vector<ServerId> replicas = replicator.AllReplicas(kHotKey, ViewOf(cluster));
  ASSERT_GE(replicas.size(), 2u);
  for (size_t i = 0; i < 2 * replicas.size(); ++i) client.Get(kHotKey);
  uint64_t warm_clock = client.op_clock();

  // One replica rejects every request in a transient window covering the
  // update — reachable but failing, the PR-2 escalation case.
  ServerId flaky = replicas.back();
  FaultSchedule schedule;
  FaultEvent transient;
  transient.server = flaky;
  transient.type = FaultType::kTransient;
  transient.start_op = warm_clock;
  transient.end_op = warm_clock + 1;
  transient.probability = 1.0;
  schedule.events.push_back(transient);
  FaultInjector injector(schedule);
  client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy());

  uint64_t generation_before = cluster.server_generation(flaky);
  client.Set(kHotKey, 999);  // this op runs at warm_clock
  EXPECT_GE(client.stats().lost_invalidations, 1u);
  EXPECT_GE(client.stats().forced_restarts, 1u);
  EXPECT_GT(cluster.server_generation(flaky), generation_before)
      << "the unreachable replica must be cold-restarted";
  EXPECT_FALSE(cluster.server(flaky).Get(kHotKey).has_value())
      << "the stale copy must not survive the escalation";

  for (size_t i = 0; i < 2 * replicas.size(); ++i) {
    EXPECT_EQ(client.Get(kHotKey), 999u)
        << "no stale read after the loss escalation";
  }
}

}  // namespace
}  // namespace cot::cluster
