// Retry/backoff and breaker-cooldown behaviour under *sustained* fault
// schedules — windows covering the whole run, not the brief pulses the
// windowed fault tests use. Sustained transient failure is the regime
// where retry storms form and circuit breakers earn their keep: the
// breaker must keep re-opening after failed half-open probes, retries must
// stay bounded, and the (opt-in) retry budget must cap the retry fraction
// of total traffic.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "cache/lru_cache.h"
#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"

namespace cot::cluster {
namespace {

constexpr uint64_t kOps = 60000;

ExperimentConfig SustainedConfig(double probability, ServerId victim = 0) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.num_clients = 4;
  config.key_space = 10000;
  config.total_ops = kOps;
  config.seed = 5;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kUniform;
  phase.read_fraction = 0.95;
  config.phases = {phase};
  FaultEvent e;
  e.server = victim;
  e.type = FaultType::kTransient;
  e.start_op = 0;
  e.end_op = kOps;  // the victim never heals
  e.probability = probability;
  config.faults.events.push_back(e);
  return config;
}

CacheFactory SmallLru() {
  return [](uint32_t) { return std::make_unique<cache::LruCache>(128); };
}

// A shard that fails every request: the breaker opens after
// `breaker_failure_threshold` consecutive failures, then admits exactly one
// probe per cooldown. Every probe fails and re-opens, so over a long run
// the number of requests that ever reached the dead shard is bounded by
// trips + probes — not by traffic.
TEST(SustainedFaultTest, BreakerProbesBoundTrafficToADeadShard) {
  ExperimentConfig config = SustainedConfig(1.0);
  config.failure_policy.breaker_failure_threshold = 3;
  config.failure_policy.breaker_cooldown_ops = 64;
  config.failure_policy.max_retries = 2;
  auto result = RunExperiment(config, SmallLru());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FrontendStats& a = result->aggregate;

  // One closed->open trip per client: a failed half-open probe re-arms
  // the open breaker without counting a new trip, so a sustained outage
  // is exactly one trip however long it lasts.
  EXPECT_EQ(a.breaker_trips, 4u);
  // But probing continued all run: failures beyond the initial trip
  // threshold are the half-open probes.
  EXPECT_GT(a.failed_requests,
            config.num_clients *
                config.failure_policy.breaker_failure_threshold);
  // Reads owned by the dead shard were served degraded (storage direct,
  // breaker open) instead of hammering it.
  EXPECT_GT(a.degraded_ops, 0u);
  // Total failed attempts at the dead shard are bounded by probe cadence:
  // per client roughly ops/cooldown probes plus the initial threshold
  // (each failed probe re-opens immediately), times a small retry factor.
  // Invalidations bypass the breaker by design (dropping one risks a
  // stale read), so budget their attempts separately on top.
  const uint64_t per_client_ops = kOps / config.num_clients;
  const uint64_t probe_bound =
      config.num_clients *
      (config.failure_policy.breaker_failure_threshold +
       per_client_ops / config.failure_policy.breaker_cooldown_ops + 1) *
      (1 + config.failure_policy.max_retries);
  const uint64_t invalidation_bound =
      a.updates * (1 + config.failure_policy.max_retries);
  EXPECT_LE(a.failed_requests, probe_bound + invalidation_bound);
  // But the client never gave up on correctness: every op completed.
  EXPECT_EQ(a.reads + a.updates, kOps);
}

// Longer cooldowns mean fewer probes: the half-open cadence, not the
// offered load, controls how often a sick shard is re-tested.
TEST(SustainedFaultTest, CooldownControlsProbeCadence) {
  ExperimentConfig slow_probe = SustainedConfig(1.0);
  slow_probe.failure_policy.breaker_cooldown_ops = 256;
  ExperimentConfig fast_probe = SustainedConfig(1.0);
  fast_probe.failure_policy.breaker_cooldown_ops = 16;
  auto slow = RunExperiment(slow_probe, SmallLru());
  auto fast = RunExperiment(fast_probe, SmallLru());
  ASSERT_TRUE(slow.ok() && fast.ok());
  // Trips are identical (one sustained outage = one trip per client);
  // what the cooldown controls is how often the dead shard is re-probed,
  // i.e. how many failures the client keeps eating.
  EXPECT_EQ(slow->aggregate.breaker_trips, fast->aggregate.breaker_trips);
  EXPECT_LT(slow->aggregate.failed_requests,
            fast->aggregate.failed_requests);
}

// Flaky-but-alive shard (p = 0.5): retries usually succeed, the breaker
// rarely opens with a lenient threshold, and retry volume tracks the
// failure rate — the pre-storm regime.
TEST(SustainedFaultTest, FlakyShardRetriesRecoverWithoutTripping) {
  ExperimentConfig config = SustainedConfig(0.5);
  config.failure_policy.breaker_failure_threshold = 8;
  config.failure_policy.max_retries = 3;
  auto result = RunExperiment(config, SmallLru());
  ASSERT_TRUE(result.ok());
  const FrontendStats& a = result->aggregate;
  EXPECT_GT(a.retries, 0u);
  // With p=0.5 and 3 retries, almost every op eventually lands; failovers
  // mop up the tail. No op is lost.
  EXPECT_EQ(a.reads + a.updates, kOps);
  // Retries succeed often enough that failovers are a small fraction of
  // the victim's traffic.
  EXPECT_LT(a.failovers, a.retries);
}

// Sustained-fault runs stay deterministic across thread counts (no retry
// budget attached): fault decisions are pure hashes of the observing
// client's own stream.
TEST(SustainedFaultTest, SustainedScheduleIsThreadCountInvariant) {
  auto run = [](uint32_t threads) {
    ExperimentConfig config = SustainedConfig(0.3);
    config.num_threads = threads;
    return RunExperiment(config, SmallLru());
  };
  auto one = run(1);
  auto four = run(4);
  ASSERT_TRUE(one.ok() && four.ok());
  EXPECT_EQ(one->aggregate.failed_requests, four->aggregate.failed_requests);
  EXPECT_EQ(one->aggregate.retries, four->aggregate.retries);
  EXPECT_EQ(one->aggregate.breaker_trips, four->aggregate.breaker_trips);
  EXPECT_EQ(one->aggregate.local_hits, four->aggregate.local_hits);
  EXPECT_EQ(one->per_server_lookups, four->per_server_lookups);
}

// The retry budget under sustained flakiness: with it, granted retries are
// capped near ratio * traffic; denied retries are counted and the op takes
// its fallback (failover) path instead. Without it, retry volume is a
// multiple higher — the storm the budget exists to prevent.
TEST(SustainedFaultTest, RetryBudgetCapsSustainedRetryVolume) {
  ExperimentConfig with_budget = SustainedConfig(0.6);
  with_budget.failure_policy.max_retries = 3;
  with_budget.failure_policy.breaker_failure_threshold = 1000;  // isolate
  with_budget.failure_policy.retry_budget_ratio = 0.1;
  with_budget.failure_policy.retry_budget_burst = 16.0;
  ExperimentConfig without = with_budget;
  without.failure_policy.retry_budget_ratio = 0.0;

  auto capped = RunExperiment(with_budget, SmallLru());
  auto uncapped = RunExperiment(without, SmallLru());
  ASSERT_TRUE(capped.ok() && uncapped.ok());
  const FrontendStats& c = capped->aggregate;
  const FrontendStats& u = uncapped->aggregate;

  EXPECT_EQ(u.retries_suppressed, 0u);
  EXPECT_GT(c.retries_suppressed, 0u);
  // Retries stay within the budgeted fraction of fresh backend traffic
  // (fresh deposits happen per backend request, so bound against lookups
  // plus invalidation deliveries; the burst allows a small overshoot).
  const uint64_t fresh =
      c.backend_lookups + c.invalidations + c.storage_reads;
  EXPECT_LE(c.retries, fresh / 10 + 17);
  // And materially fewer than the unbudgeted run.
  EXPECT_LT(c.retries * 2, u.retries);
  // Identity of work: every op still completed in both runs.
  EXPECT_EQ(c.reads + c.updates, kOps);
  EXPECT_EQ(u.reads + u.updates, kOps);
}

// Suppressed retries still leave the protocol correct: a denied read retry
// fails over to storage (correct value), a denied invalidation retry
// escalates exactly like an exhausted one.
TEST(SustainedFaultTest, BudgetDenialTakesTheFallbackPathNotAWrongAnswer) {
  ExperimentConfig config = SustainedConfig(0.7);
  config.failure_policy.max_retries = 3;
  config.failure_policy.retry_budget_ratio = 0.05;
  auto result = RunExperiment(config, SmallLru());
  ASSERT_TRUE(result.ok());
  const FrontendStats& a = result->aggregate;
  EXPECT_GT(a.retries_suppressed, 0u);
  // Denied read retries show up as failovers/degraded ops, not losses.
  EXPECT_GT(a.failovers + a.degraded_ops, 0u);
  EXPECT_EQ(a.reads + a.updates, kOps);
}

}  // namespace
}  // namespace cot::cluster
