// Topology changes (AddServer / RemoveServer + FlushMisownedKeys) racing
// live client traffic. The cluster's reader-writer topology lock makes
// membership changes safe against in-flight Get/Set traffic; these tests
// drive both sides hard and check the two invariants that matter: no
// torn reads (readers of never-updated keys always see the initial
// value; writers always read their own writes through storage authority)
// and no misowned stale copies once the dust settles.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "cluster/routing.h"

namespace cot::cluster {
namespace {

TEST(ConcurrentElasticityTest, ReadersSurviveMembershipChurn) {
  const uint64_t kKeySpace = 2000;
  CacheCluster cluster(4, kKeySpace);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_reads{0};
  const int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      FrontendClient client(&cluster, nullptr);
      uint64_t key = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Nobody updates these keys, so any value other than the initial
        // one is a torn/stale read.
        if (client.Get(key) != StorageLayer::InitialValue(key)) {
          wrong_reads.fetch_add(1, std::memory_order_relaxed);
        }
        key = (key + kReaders) % kKeySpace;
      }
    });
  }

  // Churn the membership while the readers run: grow to 8, then remove
  // half the original shards, then grow again.
  std::vector<ServerId> added;
  for (int i = 0; i < 4; ++i) added.push_back(cluster.AddServer());
  EXPECT_TRUE(cluster.RemoveServer(0).ok());
  EXPECT_TRUE(cluster.RemoveServer(1).ok());
  // Double-removal is rejected, even mid-traffic.
  EXPECT_FALSE(cluster.RemoveServer(0).ok());
  for (int i = 0; i < 2; ++i) added.push_back(cluster.AddServer());

  stop.store(true);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(wrong_reads.load(), 0u);
  EXPECT_FALSE(cluster.IsActive(0));
  EXPECT_FALSE(cluster.IsActive(1));
  for (ServerId id : added) EXPECT_TRUE(cluster.IsActive(id));
  EXPECT_EQ(cluster.server_count(), 10u);
}

TEST(ConcurrentElasticityTest, WritersReadTheirWritesAcrossChurn) {
  const uint64_t kKeySpace = 1200;
  CacheCluster cluster(4, kKeySpace);

  const int kWriters = 3;
  const uint64_t kKeysPerWriter = kKeySpace / kWriters;
  std::atomic<uint64_t> wrong_reads{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  std::atomic<bool> go{false};
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      FrontendClient client(&cluster, nullptr);
      uint64_t base = static_cast<uint64_t>(t) * kKeysPerWriter;
      // Disjoint key ranges: each writer owns its keys outright, so its
      // own last write is the authoritative value.
      for (int round = 0; round < 3; ++round) {
        for (uint64_t k = base; k < base + kKeysPerWriter; ++k) {
          client.Set(k, 10000u + k + static_cast<uint64_t>(round));
        }
      }
      for (uint64_t k = base; k < base + kKeysPerWriter; ++k) {
        if (client.Get(k) != 10000u + k + 2u) {
          wrong_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  go.store(true);
  // Membership churn concurrent with the write storm.
  for (int i = 0; i < 3; ++i) cluster.AddServer();
  EXPECT_TRUE(cluster.RemoveServer(2).ok());
  cluster.AddServer();

  for (std::thread& w : writers) w.join();
  EXPECT_EQ(wrong_reads.load(), 0u);

  // One more topology change after the traffic stops: its misowned-key
  // flush sweeps anything stranded by mid-churn fills, after which every
  // cached copy must live on its ring owner and be fresh.
  cluster.AddServer();
  for (uint64_t k = 0; k < kKeySpace; k += 7) {
    ServerId owner = cluster.OwnerOf(k);
    for (ServerId s = 0; s < cluster.server_count(); ++s) {
      if (!cluster.IsActive(s)) continue;
      auto copy = cluster.server(s).Get(k);
      if (!copy.has_value()) continue;
      EXPECT_EQ(s, owner) << "misowned copy of key " << k;
      EXPECT_EQ(*copy, cluster.storage().Get(k)) << "stale copy of key " << k;
    }
  }
}

TEST(ConcurrentElasticityTest, MultiGetReadersSurviveTopologyStorm) {
  // The batched read path under a membership storm: MultiGet routes a
  // whole sub-batch off one lock-free snapshot load, and every fenced
  // rejection mid-storm must refresh-and-regroup (or fail over) without
  // ever returning a wrong value. This is the TSan regression test for
  // the atomic snapshot swap racing batched readers.
  const uint64_t kKeySpace = 4000;
  CacheCluster cluster(4, kKeySpace);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_reads{0};
  const int kReaders = 4;
  const size_t kBatch = 16;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Mixed cache shapes: one cacheless reader (pure transport), the
      // rest with local caches (probe/fill phases active).
      FrontendClient client(
          &cluster, t == 0 ? nullptr
                           : std::make_unique<cache::LruCache>(64));
      std::vector<uint64_t> batch(kBatch);
      uint64_t key = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t i = 0; i < kBatch; ++i) {
          batch[i] = key;
          key = (key + kReaders) % kKeySpace;
        }
        std::vector<uint64_t> got = client.MultiGet(batch);
        for (size_t i = 0; i < kBatch; ++i) {
          // Never-updated keys: anything but the initial value is a torn
          // or misrouted read.
          if (got[i] != StorageLayer::InitialValue(batch[i])) {
            wrong_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Storm: every mutation bumps the routing epoch, so in-flight
  // sub-batches keep getting fenced rejections mid-batch.
  std::vector<ServerId> added;
  for (int round = 0; round < 4; ++round) {
    added.push_back(cluster.AddServer());
    ASSERT_TRUE(cluster.RemoveServer(added.front()).ok());
    added.erase(added.begin());
    added.push_back(cluster.AddServer());
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(wrong_reads.load(), 0u);
  for (ServerId id : added) EXPECT_TRUE(cluster.IsActive(id));
}

TEST(ConcurrentElasticityTest, RouterClientsSurviveTopologyStorm) {
  // Regression for the RingRouter raw-ring borrow: routing policies now
  // receive the *client's snapshot* ring through RouteView, so a routed
  // read never dereferences the live ring that a concurrent membership
  // change is rewriting (the old API handed routers a ConsistentHashRing*
  // into the cluster, which churn mutates in place — a use-after-update
  // race this test reproduces under TSan). Router clients refresh their
  // views mid-storm, mixing per-op Gets with the MultiGet fallback path.
  const uint64_t kKeySpace = 4000;
  CacheCluster cluster(4, kKeySpace);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_reads{0};
  const int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      FrontendClient client(
          &cluster, t == 0 ? nullptr
                           : std::make_unique<cache::LruCache>(64));
      RingRouter router;
      client.SetRouter(&router);
      std::vector<uint64_t> batch(8);
      uint64_t key = static_cast<uint64_t>(t);
      uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (++iter % 32 == 0) client.RefreshRouteView();
        if (iter % 2 == 0) {
          for (uint64_t& slot : batch) {
            slot = key;
            key = (key + kReaders) % kKeySpace;
          }
          std::vector<uint64_t> got = client.MultiGet(batch);
          for (size_t i = 0; i < batch.size(); ++i) {
            if (got[i] != StorageLayer::InitialValue(batch[i])) {
              wrong_reads.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          if (client.Get(key) != StorageLayer::InitialValue(key)) {
            wrong_reads.fetch_add(1, std::memory_order_relaxed);
          }
          key = (key + kReaders) % kKeySpace;
        }
      }
    });
  }

  // The same storm shape as the MultiGet test: every mutation rewrites
  // the live ring while routed reads are in flight on stale views.
  std::vector<ServerId> added;
  for (int round = 0; round < 4; ++round) {
    added.push_back(cluster.AddServer());
    ASSERT_TRUE(cluster.RemoveServer(added.front()).ok());
    added.erase(added.begin());
    added.push_back(cluster.AddServer());
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(wrong_reads.load(), 0u);
  for (ServerId id : added) EXPECT_TRUE(cluster.IsActive(id));
}

TEST(ConcurrentElasticityTest, RemoveServerDropsContentAndRedistributes) {
  CacheCluster cluster(3, 300);
  FrontendClient client(&cluster, nullptr);
  for (uint64_t k = 0; k < 300; ++k) client.Get(k);  // fill every shard

  ASSERT_TRUE(cluster.RemoveServer(1).ok());
  EXPECT_EQ(cluster.server(1).size(), 0u);  // content dropped with the shard
  for (uint64_t k = 0; k < 300; ++k) {
    EXPECT_NE(cluster.OwnerOf(k), 1u);  // nothing routes to it anymore
  }
  // Traffic keeps flowing; the orphaned ranges cold-miss and refill.
  for (uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(client.Get(k), StorageLayer::InitialValue(k));
  }
  EXPECT_EQ(cluster.server(1).size(), 0u);
}

}  // namespace
}  // namespace cot::cluster
