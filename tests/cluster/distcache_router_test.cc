// Property and fuzz tests for the DistCache-style two-layer router: the
// partition-independence and bounded-ownership properties the p2c load
// guarantee rests on, determinism under a fixed seed, the load-estimate
// staleness bound, and a randomized campaign against an O(n) reference
// router. Plus the topology plumbing: ParseTopology, engine validation,
// and the invalidate-every-replica integration contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/distcache_router.h"
#include "cluster/experiment.h"
#include "cluster/frontend_client.h"
#include "core/space_saving_tracker.h"
#include "util/hash.h"
#include "metrics/imbalance.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cluster {
namespace {

DistCacheConfig SmallEpochs(size_t hot_keys = 16, uint64_t epoch_ops = 128) {
  DistCacheConfig config;
  config.hot_keys = hot_keys;
  config.epoch_ops = epoch_ops;
  return config;
}

std::vector<ServerId> Nodes(ServerId first, size_t count) {
  std::vector<ServerId> nodes(count);
  for (size_t i = 0; i < count; ++i) nodes[i] = first + i;
  return nodes;
}

// --- Property: candidates come from distinct, independent partitions. ---

TEST(DistCacheRouterTest, CandidatesAlwaysFromDistinctPartitions) {
  // For every tier size (odd ones split unevenly) and a fuzzed key set,
  // candidate A must come from the first partition, candidate B from the
  // second, so the two candidates of a key are distinct *by construction*
  // — the property that makes power-of-two-choices meaningful.
  for (size_t tier : {2u, 3u, 4u, 5u, 7u, 8u}) {
    SCOPED_TRACE("tier size " + std::to_string(tier));
    // Non-zero-based ids catch id/index confusion.
    DistCacheRouter router(Nodes(100, tier), SmallEpochs());
    ASSERT_TRUE(router.two_layer());
    EXPECT_EQ(router.partition_a_size() + router.partition_b_size(), tier);
    EXPECT_GE(router.partition_a_size(), router.partition_b_size());
    Rng rng(tier * 7919);
    for (int i = 0; i < 20000; ++i) {
      uint64_t key = rng.NextUint64();
      DistCacheRouter::Candidates c = router.CandidatesFor(key);
      ASSERT_NE(c.a, c.b) << "key " << key;
      ASSERT_GE(c.a, 100u);
      ASSERT_LT(c.a, 100u + router.partition_a_size());
      ASSERT_GE(c.b, 100u + router.partition_a_size());
      ASSERT_LT(c.b, 100u + tier);
    }
  }
}

TEST(DistCacheRouterTest, OwnershipFractionsBounded) {
  // No cache node may own an outsized share of the key space in either
  // partition: each node's candidate fraction stays within a factor of 2
  // of its fair share (1 / partition size) over a large fuzzed sample.
  for (size_t tier : {4u, 5u, 8u}) {
    SCOPED_TRACE("tier size " + std::to_string(tier));
    DistCacheRouter router(Nodes(0, tier), SmallEpochs());
    std::map<ServerId, uint64_t> owned_a;
    std::map<ServerId, uint64_t> owned_b;
    const int kKeys = 100000;
    Rng rng(tier * 31337);
    for (int i = 0; i < kKeys; ++i) {
      DistCacheRouter::Candidates c = router.CandidatesFor(rng.NextUint64());
      ++owned_a[c.a];
      ++owned_b[c.b];
    }
    auto check = [&](const std::map<ServerId, uint64_t>& owned,
                     size_t partition_size, const char* label) {
      double fair = 1.0 / static_cast<double>(partition_size);
      EXPECT_EQ(owned.size(), partition_size) << label;
      for (const auto& [node, count] : owned) {
        double fraction = static_cast<double>(count) / kKeys;
        EXPECT_GT(fraction, fair / 2) << label << " node " << node;
        EXPECT_LT(fraction, fair * 2) << label << " node " << node;
      }
    };
    check(owned_a, router.partition_a_size(), "partition A");
    check(owned_b, router.partition_b_size(), "partition B");
  }
}

// --- Property: deterministic under a fixed seed. ---

TEST(DistCacheRouterTest, IdenticallyFedRoutersDecideIdentically) {
  // The router is RNG-free: two instances fed the same access stream must
  // make byte-identical decisions at every step, across epoch boundaries
  // and hot-set rebuilds included.
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  DistCacheRouter lhs(Nodes(8, 4), SmallEpochs());
  DistCacheRouter rhs(Nodes(8, 4), SmallEpochs());
  Rng rng(99);
  workload::ZipfianGenerator gen(5000, 1.1);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = gen.Next(rng);
    ServerId a = lhs.Route(key, view);
    ServerId b = rhs.Route(key, view);
    ASSERT_EQ(a, b) << "op " << i << " key " << key;
    lhs.OnLookup(key, a);
    rhs.OnLookup(key, b);
    ASSERT_EQ(lhs.AllReplicas(key, view), rhs.AllReplicas(key, view));
  }
  EXPECT_EQ(lhs.epochs_completed(), rhs.epochs_completed());
  EXPECT_GT(lhs.epochs_completed(), 0u);
}

// --- Property: load-estimate staleness is bounded. ---

TEST(DistCacheRouterTest, LoadEstimateStalenessBounded) {
  // Each epoch contributes at most epoch_ops observations and halves the
  // carried estimate, so an estimate is always < 2 * epoch_ops (geometric
  // series) — a lookup can never be weighed against arbitrarily old load.
  const uint64_t kEpochOps = 128;
  DistCacheRouter router(Nodes(0, 4), SmallEpochs(8, kEpochOps));
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  Rng rng(7);
  // Worst case for a single node: every op lands on node 0.
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBelow(64);
    router.Route(key, view);
    router.OnLookup(key, /*server=*/0);
    for (ServerId node : router.cache_nodes()) {
      ASSERT_LT(router.LoadEstimate(node), 2 * kEpochOps)
          << "op " << i << " node " << node;
    }
  }
}

// --- Randomized campaign against an O(n) reference router. ---

/// Straight-line reimplementation of the routing semantics with plain
/// containers and linear scans: same hash placements and epoch cadence,
/// but independent bookkeeping for the hot set, the load estimates, and
/// the p2c choice. Divergence means one of the two implementations
/// mis-handles an epoch boundary, a tie, or a load update.
class ReferenceRouter {
 public:
  ReferenceRouter(std::vector<ServerId> nodes, DistCacheConfig config)
      : config_(config),
        nodes_(std::move(nodes)),
        split_(nodes_.size() / 2 + nodes_.size() % 2),
        loads_(nodes_.size(), 0),
        tracker_(config.hot_keys * 2) {}

  ServerId Route(uint64_t key, const ConsistentHashRing& ring) {
    tracker_.TrackAccess(key, core::AccessType::kRead);
    if (++ops_ >= config_.epoch_ops) EndEpoch();
    if (nodes_.size() < 2 || hot_.count(key) == 0) return ring.ServerFor(key);
    ServerId a = nodes_[HashPair(key, config_.salt_a) % split_];
    ServerId b =
        nodes_[split_ + HashPair(key, config_.salt_b) % (nodes_.size() - split_)];
    uint64_t load_a = LoadOf(a);
    uint64_t load_b = LoadOf(b);
    if (load_a != load_b) return load_a < load_b ? a : b;
    return std::min(a, b);
  }

  void OnLookup(ServerId server) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] == server) ++loads_[i];
    }
  }

 private:
  uint64_t LoadOf(ServerId server) const {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] == server) return loads_[i];
    }
    return 0;
  }

  void EndEpoch() {
    ops_ = 0;
    hot_.clear();
    for (const auto& [key, hotness] : tracker_.SortedByHotnessDesc()) {
      if (hot_.size() >= config_.hot_keys) break;
      (void)hotness;
      hot_.insert(key);
    }
    for (uint64_t& load : loads_) load /= 2;
    tracker_.HalveAllHotness();
  }

  DistCacheConfig config_;
  std::vector<ServerId> nodes_;
  size_t split_;
  std::vector<uint64_t> loads_;
  std::set<uint64_t> hot_;
  core::SpaceSavingTracker tracker_;
  uint64_t ops_ = 0;
};

TEST(DistCacheRouterTest, RandomizedCampaignMatchesReferenceRouter) {
  for (uint64_t seed : {1ull, 17ull, 4242ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ConsistentHashRing ring(8);
    RouteView view{1, &ring};
    const size_t tier = 2 + seed % 4;  // 2..5 nodes, odd splits included
    DistCacheRouter router(Nodes(20, tier), SmallEpochs(12, 64));
    ReferenceRouter reference(Nodes(20, tier), SmallEpochs(12, 64));
    Rng rng(seed);
    workload::ZipfianGenerator gen(2000, 1.2);
    for (int i = 0; i < 30000; ++i) {
      uint64_t key = gen.Next(rng);
      ServerId got = router.Route(key, view);
      ServerId want = reference.Route(key, ring);
      ASSERT_EQ(got, want) << "op " << i << " key " << key;
      // Mirror the client contract: the delivered lookup is the load
      // observation, whichever tier served it.
      router.OnLookup(key, got);
      reference.OnLookup(want);
    }
  }
}

// --- Behavior at the edges. ---

TEST(DistCacheRouterTest, DegenerateTierRoutesEverythingViaRing) {
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  DistCacheRouter router({42}, SmallEpochs(8, 32));
  EXPECT_FALSE(router.two_layer());
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBelow(100);
    EXPECT_EQ(router.Route(key, view), ring.ServerFor(key));
    EXPECT_EQ(router.AllReplicas(key, view),
              std::vector<ServerId>{ring.ServerFor(key)});
  }
}

TEST(DistCacheRouterTest, HotKeysMoveToCacheTierColdKeysStayOnRing) {
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  DistCacheRouter router(Nodes(8, 4), SmallEpochs(4, 64));
  const uint64_t hot = 5;
  for (int i = 0; i < 200; ++i) router.Route(hot, view);
  ASSERT_TRUE(router.IsHot(hot));
  DistCacheRouter::Candidates c = router.CandidatesFor(hot);
  ServerId routed = router.Route(hot, view);
  EXPECT_TRUE(routed == c.a || routed == c.b);
  // The write fan-out covers both candidates plus the shard owner, and
  // the three are pairwise distinct (cache nodes never join the ring).
  std::vector<ServerId> replicas = router.AllReplicas(hot, view);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(std::set<ServerId>(replicas.begin(), replicas.end()).size(), 3u);
  EXPECT_EQ(replicas[2], ring.ServerFor(hot));
  // A key never seen is cold and takes the ring.
  EXPECT_FALSE(router.IsHot(999999));
}

TEST(DistCacheRouterTest, HotKeyRoutesBalanceAcrossCandidates) {
  // p2c in action: a single viral key alternates between its two
  // candidates as the load estimates see-saw, instead of pinning one node.
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  DistCacheRouter router(Nodes(8, 4), SmallEpochs(4, 64));
  const uint64_t hot = 5;
  for (int i = 0; i < 100; ++i) router.Route(hot, view);
  ASSERT_TRUE(router.IsHot(hot));
  std::map<ServerId, uint64_t> served;
  for (int i = 0; i < 1000; ++i) {
    ServerId sid = router.Route(hot, view);
    router.OnLookup(hot, sid);
    ++served[sid];
  }
  DistCacheRouter::Candidates c = router.CandidatesFor(hot);
  EXPECT_GT(served[c.a], 400u);
  EXPECT_GT(served[c.b], 400u);
}

TEST(DistCacheRouterTest, ResetCacheTierClearsDerivedState) {
  ConsistentHashRing ring(8);
  RouteView view{1, &ring};
  DistCacheRouter router(Nodes(8, 4), SmallEpochs(4, 64));
  const uint64_t hot = 5;
  for (int i = 0; i < 200; ++i) {
    router.OnLookup(hot, router.Route(hot, view));
  }
  ASSERT_TRUE(router.IsHot(hot));

  router.ResetCacheTier(Nodes(30, 6));
  EXPECT_FALSE(router.IsHot(hot)) << "hot set must not survive a reconfig";
  EXPECT_EQ(router.partition_a_size(), 3u);
  EXPECT_EQ(router.partition_b_size(), 3u);
  for (ServerId node : router.cache_nodes()) {
    EXPECT_EQ(router.LoadEstimate(node), 0u);
  }
  // The ex-tier's ids are strangers now.
  EXPECT_EQ(router.LoadEstimate(8), 0u);
}

// --- Topology plumbing. ---

TEST(ParseTopologyTest, AcceptsKnownNamesRejectsUnknown) {
  auto ring = ParseTopology("ring");
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(*ring, Topology::kRing);
  EXPECT_STREQ(ToString(*ring), "ring");

  auto distcache = ParseTopology("distcache");
  ASSERT_TRUE(distcache.ok());
  EXPECT_EQ(*distcache, Topology::kDistCache);
  EXPECT_STREQ(ToString(*distcache), "distcache");

  auto bogus = ParseTopology("mesh");
  ASSERT_FALSE(bogus.ok());
  // The error must teach the valid values, not just reject.
  EXPECT_NE(bogus.status().message().find("ring, distcache"),
            std::string::npos)
      << bogus.status();
}

TEST(ParseTopologyTest, EngineRejectsUndersizedCacheTier) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 1000;
  config.num_clients = 2;
  config.total_ops = 1000;
  config.phases = {workload::PhaseSpec{}};
  config.topology = Topology::kDistCache;
  config.cache_nodes = 1;  // one partition would be empty
  auto result = RunExperiment(config, CacheFactory{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cache_nodes"), std::string::npos)
      << result.status();
}

// --- Client integration: no stale replica survives an update. ---

TEST(DistCacheIntegrationTest, UpdateInvalidatesBothCandidatesAndOwner) {
  CacheCluster cluster(4, 1000);
  std::vector<ServerId> tier;
  for (int i = 0; i < 4; ++i) tier.push_back(cluster.AddCacheNode());
  DistCacheRouter router(tier, SmallEpochs(4, 32));
  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&router);

  const uint64_t hot = 7;
  for (int i = 0; i < 100; ++i) client.Get(hot);
  ASSERT_TRUE(router.IsHot(hot));
  // Keep reading: both candidates eventually hold a copy (the estimates
  // see-saw, so the routed target alternates and each side fills).
  for (int i = 0; i < 64; ++i) client.Get(hot);
  DistCacheRouter::Candidates c = router.CandidatesFor(hot);
  ASSERT_TRUE(cluster.server(c.a).Get(hot).has_value());
  ASSERT_TRUE(cluster.server(c.b).Get(hot).has_value());

  uint64_t updates_before = client.stats().updates;
  uint64_t invalidations_before = client.stats().invalidations;
  client.Set(hot, 4321);
  for (ServerId sid : router.AllReplicas(hot, client.route_view())) {
    EXPECT_FALSE(cluster.server(sid).Get(hot).has_value())
        << "stale replica on server " << sid;
  }
  // Three targets, three deliveries — the distcache conservation identity.
  EXPECT_EQ(client.stats().updates, updates_before + 1);
  EXPECT_EQ(client.stats().invalidations, invalidations_before + 3);
  // Read-your-writes through whichever replica serves next.
  EXPECT_EQ(client.Get(hot), 4321u);
}

TEST(DistCacheIntegrationTest, CacheNodesStayOffTheRingAcrossChurn) {
  CacheCluster cluster(4, 500);
  std::vector<ServerId> tier;
  for (int i = 0; i < 2; ++i) tier.push_back(cluster.AddCacheNode());
  EXPECT_TRUE(cluster.IsCacheNode(tier[0]));
  EXPECT_FALSE(cluster.IsCacheNode(0));
  EXPECT_EQ(cluster.CacheNodeIds(), tier);
  // Cache nodes are not ring members: adding/removing shards never routes
  // a key to them, and they can never be rejoined as shards.
  ServerId added = cluster.AddServer();
  ASSERT_TRUE(cluster.RemoveServer(1).ok());
  for (uint64_t key = 0; key < 500; ++key) {
    ServerId owner = cluster.OwnerOf(key);
    EXPECT_FALSE(cluster.IsCacheNode(owner)) << "key " << key;
  }
  EXPECT_FALSE(cluster.RejoinServer(tier[0]).ok());
  EXPECT_TRUE(cluster.IsActive(added));
}

// --- Engine integration: two-layer runs flatten shard load. ---

TEST(DistCacheEngineTest, TwoLayerRunBeatsPlainRingOnSkew) {
  ExperimentConfig config;
  config.num_servers = 8;
  config.key_space = 50000;
  config.num_clients = 4;
  config.total_ops = 400000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 1.2;
  phase.read_fraction = 0.95;
  config.phases = {phase};

  // Cacheless clients: skew hits the shard tier with nothing in front.
  auto plain = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_TRUE(plain->cache_node_ids.empty());

  config.topology = Topology::kDistCache;
  config.distcache_hot_keys = 128;
  auto layered = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(layered.ok()) << layered.status();

  ASSERT_EQ(layered->cache_node_ids.size(), 4u);
  ASSERT_EQ(layered->cache_node_lookups.size(), 4u);
  uint64_t tier_load = 0;
  for (uint64_t n : layered->cache_node_lookups) tier_load += n;
  EXPECT_GT(tier_load, 0u) << "hot keys must actually reach the tier";
  // Shard imbalance excludes the cache tier, so the two runs compare
  // apples to apples — and the two-layer run must win under heavy skew.
  EXPECT_EQ(layered->per_server_lookups.size(), 8u);
  EXPECT_LT(layered->imbalance, plain->imbalance);
  // Conservation: every read is a hit, a lookup, or a fallback; every
  // update invalidates all three replica targets (no faults => none lost).
  const FrontendStats& a = layered->aggregate;
  EXPECT_EQ(a.reads, a.local_hits + a.backend_lookups + a.degraded_ops +
                         a.failovers);
  EXPECT_EQ(a.updates * 3, a.invalidations);
  EXPECT_EQ(a.lost_invalidations, 0u);
}

}  // namespace
}  // namespace cot::cluster
