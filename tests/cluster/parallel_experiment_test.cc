#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_server.h"
#include "cluster/experiment.h"
#include "cluster/storage_layer.h"
#include "core/cot_cache.h"
#include "util/random.h"

namespace cot::cluster {
namespace {

ExperimentConfig ParallelConfig(double read_fraction) {
  ExperimentConfig config;
  config.num_servers = 8;
  config.key_space = 20000;
  config.num_clients = 8;
  config.total_ops = 160000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 0.99;
  phase.read_fraction = read_fraction;
  config.phases = {phase};
  return config;
}

CacheFactory CotFactory() {
  return [](uint32_t) { return std::make_unique<core::CotCache>(64, 512); };
}

/// Pure-read workloads are fully deterministic: no invalidation races, so
/// every stat — including backend hits and storage reads — must match the
/// serial run exactly, per client and per shard.
TEST(ParallelExperimentTest, PureReadRunMatchesSerialExactly) {
  ExperimentConfig config = ParallelConfig(1.0);
  auto serial = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok());
  for (uint32_t threads : {2u, 4u, 8u}) {
    config.num_threads = threads;
    auto parallel = RunExperiment(config, CotFactory());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->per_server_lookups, serial->per_server_lookups)
        << "threads=" << threads;
    ASSERT_EQ(parallel->per_client.size(), serial->per_client.size());
    for (size_t i = 0; i < serial->per_client.size(); ++i) {
      const FrontendStats& a = serial->per_client[i];
      const FrontendStats& b = parallel->per_client[i];
      EXPECT_EQ(a.reads, b.reads) << "client " << i;
      EXPECT_EQ(a.updates, b.updates) << "client " << i;
      EXPECT_EQ(a.local_hits, b.local_hits) << "client " << i;
      EXPECT_EQ(a.backend_lookups, b.backend_lookups) << "client " << i;
      EXPECT_EQ(a.backend_hits, b.backend_hits) << "client " << i;
      EXPECT_EQ(a.storage_reads, b.storage_reads) << "client " << i;
    }
    EXPECT_EQ(parallel->aggregate.local_hits, serial->aggregate.local_hits);
    EXPECT_DOUBLE_EQ(parallel->local_hit_rate, serial->local_hit_rate);
  }
}

/// With updates in the mix, a client's local cache (and so its lookup
/// sequence) still depends only on its own stream: updates invalidate the
/// updater's local copy and the shard copy, never another client's local
/// cache. Reads, updates, local hits, backend lookups, and per-shard
/// lookup totals are therefore interleaving-independent; only backend
/// hit/storage-read splits may shift (invalidate-then-refill races).
TEST(ParallelExperimentTest, UpdateRunKeepsLogicalStatsDeterministic) {
  ExperimentConfig config = ParallelConfig(0.95);
  auto serial = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok());
  config.num_threads = 4;
  auto parallel = RunExperiment(config, CotFactory());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->per_server_lookups, serial->per_server_lookups);
  EXPECT_EQ(parallel->imbalance, serial->imbalance);
  ASSERT_EQ(parallel->per_client.size(), serial->per_client.size());
  for (size_t i = 0; i < serial->per_client.size(); ++i) {
    const FrontendStats& a = serial->per_client[i];
    const FrontendStats& b = parallel->per_client[i];
    EXPECT_EQ(a.reads, b.reads) << "client " << i;
    EXPECT_EQ(a.updates, b.updates) << "client " << i;
    EXPECT_EQ(a.local_hits, b.local_hits) << "client " << i;
    EXPECT_EQ(a.backend_lookups, b.backend_lookups) << "client " << i;
  }
  // Every backend lookup still resolves to a hit or a storage read.
  EXPECT_EQ(parallel->aggregate.backend_hits + parallel->aggregate.storage_reads,
            parallel->aggregate.backend_lookups);
}

/// Tracing on, elastic resizing on: the merged event trace is a pure
/// function of each client's own stream, so its serialized form must be
/// byte-identical at any thread count — the tracer must not perturb (or be
/// perturbed by) the interleaving.
TEST(ParallelExperimentTest, TraceAndStatsByteIdenticalAcrossThreadCounts) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.trace_capacity = 4096;
  core::ResizerConfig resizer;
  resizer.target_imbalance = 1.1;
  resizer.initial_epoch_size = 1000;
  resizer.min_epoch_backend_lookups = 500;
  resizer.warmup_epochs = 2;
  auto elastic_factory = [](uint32_t) {
    return std::make_unique<core::CotCache>(2, 4);
  };

  auto serialize = [](const std::vector<metrics::TraceEvent>& trace) {
    std::string jsonl;
    for (const auto& event : trace) {
      jsonl += metrics::ToJson(event);
      jsonl += '\n';
    }
    return jsonl;
  };

  auto serial = RunExperiment(config, elastic_factory, &resizer);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->trace.empty()) << "tracing produced no events";
  std::string serial_jsonl = serialize(serial->trace);
  // The run actually traced resizer activity, not just boundaries.
  EXPECT_GT(serial->metrics.counter("trace/events/resizer_decision"), 0u);
  EXPECT_GT(serial->metrics.counter("trace/events/epoch_boundary"), 0u);

  for (uint32_t threads : {2u, 4u}) {
    config.num_threads = threads;
    auto parallel = RunExperiment(config, elastic_factory, &resizer);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serialize(parallel->trace), serial_jsonl)
        << "threads=" << threads;
    EXPECT_EQ(parallel->trace_dropped, serial->trace_dropped);
    ASSERT_EQ(parallel->per_client.size(), serial->per_client.size());
    for (size_t i = 0; i < serial->per_client.size(); ++i) {
      EXPECT_EQ(serial->per_client[i].local_hits,
                parallel->per_client[i].local_hits)
          << "client " << i;
      EXPECT_EQ(serial->per_client[i].backend_lookups,
                parallel->per_client[i].backend_lookups)
          << "client " << i;
    }
  }
}

/// Batching is a transport optimization: a cacheless mixed read/update run
/// driven through MultiGet sub-batches must reproduce the per-op run's
/// per-client traffic and per-shard loads exactly (each occurrence of a
/// key pays its backend visit either way, and an update flushes the
/// pending run first). The one thing batching IS allowed to move is the
/// shard-hit vs storage-read split of those visits — shard content is
/// shared state, and a batched turn schedule interleaves the clients'
/// fills differently — so only the split's sum is pinned here.
TEST(ParallelExperimentTest, BatchedCachelessRunMatchesPerOpRun) {
  ExperimentConfig config = ParallelConfig(0.95);
  auto cacheless = [](uint32_t) { return std::unique_ptr<cache::Cache>(); };
  auto per_op = RunExperiment(config, cacheless, nullptr);
  ASSERT_TRUE(per_op.ok());

  for (uint32_t batch : {4u, 16u, 64u}) {
    config.batch_size = batch;
    auto batched = RunExperiment(config, cacheless, nullptr);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->per_server_lookups, per_op->per_server_lookups)
        << "batch=" << batch;
    EXPECT_EQ(batched->total_backend_lookups, per_op->total_backend_lookups);
    EXPECT_EQ(batched->aggregate.reads, per_op->aggregate.reads);
    EXPECT_EQ(batched->aggregate.updates, per_op->aggregate.updates);
    EXPECT_EQ(
        batched->aggregate.backend_hits + batched->aggregate.storage_reads,
        per_op->aggregate.backend_hits + per_op->aggregate.storage_reads)
        << "batch=" << batch;
    ASSERT_EQ(batched->per_client.size(), per_op->per_client.size());
    for (size_t i = 0; i < per_op->per_client.size(); ++i) {
      EXPECT_EQ(batched->per_client[i].backend_lookups,
                per_op->per_client[i].backend_lookups)
          << "batch=" << batch << " client " << i;
      EXPECT_EQ(batched->per_client[i].updates,
                per_op->per_client[i].updates);
    }
  }
}

/// A batched run's merged trace (including the new kBatchLookup events) is
/// still a pure function of each client's own stream — byte-identical at
/// any thread count.
TEST(ParallelExperimentTest, BatchedTraceByteIdenticalAcrossThreadCounts) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.trace_capacity = 8192;
  config.batch_size = 16;
  auto cacheless = [](uint32_t) { return std::unique_ptr<cache::Cache>(); };

  auto serialize = [](const std::vector<metrics::TraceEvent>& trace) {
    std::string jsonl;
    for (const auto& event : trace) {
      jsonl += metrics::ToJson(event);
      jsonl += '\n';
    }
    return jsonl;
  };

  auto serial = RunExperiment(config, cacheless, nullptr);
  ASSERT_TRUE(serial.ok());
  std::string serial_jsonl = serialize(serial->trace);
  EXPECT_GT(serial->metrics.counter("trace/events/batch_lookup"), 0u);

  for (uint32_t threads : {2u, 4u}) {
    config.num_threads = threads;
    auto parallel = RunExperiment(config, cacheless, nullptr);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serialize(parallel->trace), serial_jsonl)
        << "threads=" << threads;
    EXPECT_EQ(parallel->trace_dropped, serial->trace_dropped);
  }
}

/// Tracing off (the default) leaves the result's trace empty but still
/// exports run metrics.
TEST(ParallelExperimentTest, TracingDisabledByDefault) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.total_ops = 40000;
  auto result = RunExperiment(config, CotFactory());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->trace.empty());
  EXPECT_EQ(result->trace_dropped, 0u);
  EXPECT_EQ(result->metrics.counter("client/reads"),
            result->aggregate.reads);
  EXPECT_EQ(result->metrics.counter("client/local_hits"),
            result->aggregate.local_hits);
  EXPECT_EQ(result->metrics.gauge("imbalance"), result->imbalance);
}

/// The parallel preload must produce the same end state as the serial one
/// (each key written exactly once to its owning shard).
TEST(ParallelExperimentTest, ParallelPreloadMatchesSerialPreload) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.total_ops = 40000;
  auto serial = RunExperiment(config, CotFactory());
  config.num_threads = 4;
  auto parallel = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok() && parallel.ok());
  // A preloaded backend absorbs every miss: zero storage reads either way.
  EXPECT_EQ(serial->aggregate.storage_reads, 0u);
  EXPECT_EQ(parallel->aggregate.storage_reads, 0u);
  EXPECT_EQ(parallel->per_server_lookups, serial->per_server_lookups);
}

TEST(ParallelExperimentTest, MoreThreadsThanClientsIsClamped) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.num_clients = 2;
  config.total_ops = 20000;
  config.num_threads = 16;
  auto result = RunExperiment(config, CotFactory());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aggregate.reads, 20000u);
}

TEST(ParallelExperimentTest, ZeroThreadsIsRejected) {
  ExperimentConfig config = ParallelConfig(1.0);
  config.num_threads = 0;
  EXPECT_FALSE(RunExperiment(config, CotFactory()).ok());
}

/// Relaxed atomic shard counters must be exact in total under concurrent
/// mixed traffic, and the shard's content must stay internally consistent.
TEST(ParallelExperimentTest, BackendShardCountersExactUnderConcurrency) {
  BackendServer server;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 25000;
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> sets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 17);
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t key = rng.NextBelow(1000);
        switch (rng.NextBelow(8)) {
          case 0:
            server.Delete(key);
            break;
          case 1:
            server.Set(key, key + 1);
            sets.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            server.Get(key);
            gets.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(server.lookup_count(), gets.load());
  EXPECT_EQ(server.set_count(), sets.load());
  EXPECT_LE(server.hit_count(), server.lookup_count());
  EXPECT_LE(server.size(), 1000u);
  // Every surviving value is one a writer actually stored.
  for (uint64_t key = 0; key < 1000; ++key) {
    auto value = server.Get(key);
    if (value.has_value()) EXPECT_EQ(*value, key + 1);
  }
}

/// Striped storage: concurrent writers on overlapping keys never lose the
/// per-key last-write, and the global read/write counters stay exact.
TEST(ParallelExperimentTest, StorageLayerCountsExactUnderConcurrency) {
  StorageLayer storage(4096);
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      for (int i = 0; i < kWritesPerThread; ++i) {
        uint64_t key = rng.NextBelow(4096);
        storage.Set(key, key * 2 + 1);
        storage.Get(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(storage.write_count(),
            static_cast<uint64_t>(kThreads) * kWritesPerThread);
  EXPECT_EQ(storage.read_count(),
            static_cast<uint64_t>(kThreads) * kWritesPerThread);
  for (uint64_t key = 0; key < 4096; ++key) {
    cache::Value value = storage.Get(key);
    EXPECT_TRUE(value == StorageLayer::InitialValue(key) ||
                value == key * 2 + 1)
        << "key " << key;
  }
}

}  // namespace
}  // namespace cot::cluster
