#include "cluster/serving_queue.h"

#include "gtest/gtest.h"

namespace cot::cluster {
namespace {

using Status = ServingQueue::AdmitStatus;

TEST(ServingQueue, IdleQueueServesImmediately) {
  ServingQueue q(OverloadPolicy{});
  auto r = q.Admit(1000, 150);
  EXPECT_EQ(r.status, Status::kAdmitted);
  EXPECT_EQ(r.wait_us, 0u);
  EXPECT_EQ(r.completion_us, 1150u);
  EXPECT_EQ(r.depth, 0u);
}

TEST(ServingQueue, BackToBackArrivalsQueueFifo) {
  ServingQueue q(OverloadPolicy{});
  // Three arrivals at t=0, 150us service each: waits 0, 150, 300.
  EXPECT_EQ(q.Admit(0, 150).wait_us, 0u);
  auto second = q.Admit(0, 150);
  EXPECT_EQ(second.wait_us, 150u);
  EXPECT_EQ(second.completion_us, 300u);
  auto third = q.Admit(0, 150);
  EXPECT_EQ(third.wait_us, 300u);
  EXPECT_EQ(third.completion_us, 450u);
  EXPECT_EQ(third.depth, 2u);
}

TEST(ServingQueue, CompletedWorkDrainsBeforeAdmission) {
  ServingQueue q(OverloadPolicy{});
  q.Admit(0, 100);
  q.Admit(0, 100);  // completes at 200
  auto late = q.Admit(250, 100);
  EXPECT_EQ(late.wait_us, 0u);  // both predecessors done by 250
  EXPECT_EQ(late.depth, 0u);
  EXPECT_EQ(late.completion_us, 350u);
}

TEST(ServingQueue, ArrivalDuringServiceWaitsForTheRemainder) {
  ServingQueue q(OverloadPolicy{});
  q.Admit(0, 100);  // completes at 100
  auto r = q.Admit(60, 100);
  EXPECT_EQ(r.wait_us, 40u);
  EXPECT_EQ(r.completion_us, 200u);
}

TEST(ServingQueue, TailDropAtMaxDepth) {
  OverloadPolicy policy;
  policy.max_queue_depth = 2;
  ServingQueue q(policy);
  EXPECT_EQ(q.Admit(0, 100).status, Status::kAdmitted);
  EXPECT_EQ(q.Admit(0, 100).status, Status::kAdmitted);
  auto dropped = q.Admit(0, 100);
  EXPECT_EQ(dropped.status, Status::kShedQueueFull);
  EXPECT_EQ(dropped.depth, 2u);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.shed_queue_full(), 1u);
  // After the backlog drains, admission resumes.
  EXPECT_EQ(q.Admit(500, 100).status, Status::kAdmitted);
}

TEST(ServingQueue, DeadlineAdmissionShedsLongWaits) {
  OverloadPolicy policy;
  policy.deadline_us = 120;
  ServingQueue q(policy);
  EXPECT_EQ(q.Admit(0, 100).status, Status::kAdmitted);  // wait 0
  EXPECT_EQ(q.Admit(0, 100).status, Status::kAdmitted);  // wait 100
  auto shed = q.Admit(0, 100);                           // wait would be 200
  EXPECT_EQ(shed.status, Status::kShedDeadline);
  EXPECT_EQ(q.shed_deadline(), 1u);
  // A shed request holds no slot: the next arrival still sees wait 200
  // (not 300), and is shed for the same reason.
  EXPECT_EQ(q.Admit(0, 100).status, Status::kShedDeadline);
}

TEST(ServingQueue, ShedRequestsConsumeNoCapacity) {
  OverloadPolicy policy;
  policy.max_queue_depth = 1;
  ServingQueue q(policy);
  ASSERT_EQ(q.Admit(0, 100).status, Status::kAdmitted);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Admit(0, 100).status, Status::kShedQueueFull);
  }
  // Only the one admitted request occupies time: at t=100 all is drained.
  EXPECT_EQ(q.DepthAt(100), 0u);
}

TEST(ServingQueue, ExtendLastLengthensTheBacklog) {
  ServingQueue q(OverloadPolicy{});
  q.Admit(0, 100);
  q.ExtendLast(400);  // storage round-trip discovered after admission
  auto next = q.Admit(0, 100);
  EXPECT_EQ(next.wait_us, 500u);
}

TEST(ServingQueue, ExtendLastAfterDrainIsANoOp) {
  ServingQueue q(OverloadPolicy{});
  q.Admit(0, 100);
  EXPECT_EQ(q.DepthAt(1000), 0u);  // drains the queue
  q.ExtendLast(400);
  EXPECT_EQ(q.Admit(1000, 100).wait_us, 0u);
}

TEST(ServingQueue, PressureTracksTheConfiguredFraction) {
  OverloadPolicy policy;
  policy.max_queue_depth = 4;
  policy.pressure_fraction = 0.5;
  ServingQueue q(policy);
  EXPECT_FALSE(q.UnderPressureAt(0));
  q.Admit(0, 100);
  EXPECT_FALSE(q.UnderPressureAt(0));  // depth 1 < 2
  q.Admit(0, 100);
  EXPECT_TRUE(q.UnderPressureAt(0));  // depth 2 >= 0.5 * 4
  // Pressure subsides once the backlog drains.
  EXPECT_FALSE(q.UnderPressureAt(1000));
}

TEST(ServingQueue, UnboundedQueueNeverPressured) {
  ServingQueue q(OverloadPolicy{});
  for (int i = 0; i < 100; ++i) q.Admit(0, 100);
  EXPECT_FALSE(q.UnderPressureAt(0));
}

TEST(ServingQueue, CountersAndHighWaterMark) {
  OverloadPolicy policy;
  policy.max_queue_depth = 3;
  ServingQueue q(policy);
  for (int i = 0; i < 5; ++i) q.Admit(0, 100);
  q.NoteBypass();
  EXPECT_EQ(q.admitted(), 3u);
  EXPECT_EQ(q.shed_queue_full(), 2u);
  EXPECT_EQ(q.shed_total(), 2u);
  EXPECT_EQ(q.bypassed(), 1u);
  EXPECT_EQ(q.max_depth_seen(), 3u);
}

}  // namespace
}  // namespace cot::cluster
