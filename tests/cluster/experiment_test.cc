#include "cluster/experiment.h"

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "core/cot_cache.h"
#include "workload/op_stream.h"

namespace cot::cluster {
namespace {

ExperimentConfig SmallConfig(workload::Distribution dist, double skew) {
  ExperimentConfig config;
  config.num_servers = 8;
  config.key_space = 20000;
  config.num_clients = 4;
  config.total_ops = 200000;
  workload::PhaseSpec phase;
  phase.distribution = dist;
  phase.skew = skew;
  phase.read_fraction = 0.998;
  config.phases = {phase};
  return config;
}

TEST(ExperimentTest, RejectsInvalidConfig) {
  ExperimentConfig config;
  config.num_clients = 0;
  config.phases = {workload::PhaseSpec{}};
  EXPECT_FALSE(RunExperiment(config, nullptr).ok());

  config = ExperimentConfig{};
  EXPECT_FALSE(RunExperiment(config, nullptr).ok());  // no phases
}

TEST(ExperimentTest, CachelessRunCountsEveryRead) {
  ExperimentConfig config = SmallConfig(workload::Distribution::kUniform, 0);
  config.total_ops = 40000;
  auto result = RunExperiment(config, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aggregate.reads + result->aggregate.updates, 40000u);
  EXPECT_EQ(result->total_backend_lookups, result->aggregate.backend_lookups);
  EXPECT_EQ(result->aggregate.local_hits, 0u);
}

TEST(ExperimentTest, SkewCausesImbalanceWithoutFrontendCache) {
  auto zipf = RunExperiment(
      SmallConfig(workload::Distribution::kZipfian, 1.2), nullptr);
  auto uniform = RunExperiment(
      SmallConfig(workload::Distribution::kUniform, 0), nullptr);
  ASSERT_TRUE(zipf.ok() && uniform.ok());
  EXPECT_GT(zipf->imbalance, 2.0);
  EXPECT_LT(uniform->imbalance, 1.2);
}

TEST(ExperimentTest, FrontendCacheReducesImbalanceAndLoad) {
  ExperimentConfig config = SmallConfig(workload::Distribution::kZipfian, 1.2);
  auto no_cache = RunExperiment(config, nullptr);
  auto with_cot = RunExperiment(config, [](uint32_t) {
    return std::make_unique<core::CotCache>(64, 512);
  });
  ASSERT_TRUE(no_cache.ok() && with_cot.ok());
  EXPECT_LT(with_cot->imbalance, no_cache->imbalance / 2.0);
  EXPECT_LT(with_cot->total_backend_lookups,
            no_cache->total_backend_lookups / 2);
  EXPECT_GT(with_cot->local_hit_rate, 0.4);
}

TEST(ExperimentTest, DeterministicForFixedSeed) {
  ExperimentConfig config = SmallConfig(workload::Distribution::kZipfian, 0.99);
  config.total_ops = 50000;
  auto factory = [](uint32_t) { return std::make_unique<cache::LruCache>(32); };
  auto r1 = RunExperiment(config, factory);
  auto r2 = RunExperiment(config, factory);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->per_server_lookups, r2->per_server_lookups);
  EXPECT_EQ(r1->aggregate.local_hits, r2->aggregate.local_hits);
}

TEST(ExperimentTest, ResizerConfigAttachesToCotClients) {
  ExperimentConfig config = SmallConfig(workload::Distribution::kZipfian, 1.2);
  config.total_ops = 100000;
  core::ResizerConfig resizer;
  resizer.initial_epoch_size = 2000;
  auto result = RunExperiment(
      config,
      [](uint32_t) { return std::make_unique<core::CotCache>(2, 4); },
      &resizer);
  ASSERT_TRUE(result.ok());
  // Elastic growth from 2 lines must have produced real hit rates.
  EXPECT_GT(result->local_hit_rate, 0.1);
}

TEST(ExperimentTest, PerClientPhaseBudgetsAreHonoured) {
  ExperimentConfig config = SmallConfig(workload::Distribution::kUniform, 0);
  config.num_clients = 4;
  config.total_ops = 0;  // use explicit per-client phase budgets instead
  workload::PhaseSpec p1, p2;
  p1.distribution = workload::Distribution::kZipfian;
  p1.num_ops = 1000;
  p2.distribution = workload::Distribution::kUniform;
  p2.num_ops = 500;
  config.phases = {p1, p2};
  auto result = RunExperiment(config, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aggregate.reads + result->aggregate.updates,
            4u * 1500u);
}

}  // namespace
}  // namespace cot::cluster
