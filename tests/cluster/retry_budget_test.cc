#include "cluster/retry_budget.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cot::cluster {
namespace {

TEST(RetryBudget, StartsFullAtTheBurstCap) {
  RetryBudget budget(0.1, 4.0);
  EXPECT_DOUBLE_EQ(budget.tokens(), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, FreshTrafficRefillsAtTheRatio) {
  RetryBudget budget(0.1, 4.0);
  while (budget.TryConsume()) {
  }
  // 10 fresh requests at ratio 0.1 fund exactly one retry.
  for (int i = 0; i < 9; ++i) budget.OnFreshRequest();
  EXPECT_FALSE(budget.TryConsume());
  budget.OnFreshRequest();
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
}

TEST(RetryBudget, DepositsSaturateAtTheCap) {
  RetryBudget budget(0.5, 2.0);
  for (int i = 0; i < 1000; ++i) budget.OnFreshRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
}

TEST(RetryBudget, LongRunRetryFractionIsBoundedByTheRatio) {
  // Sustained overload: every fresh request wants a retry. The budget must
  // cap granted retries at ratio * fresh + the initial burst.
  const double ratio = 0.1;
  const double burst = 16.0;
  RetryBudget budget(ratio, burst);
  const int fresh = 100000;
  int granted = 0;
  for (int i = 0; i < fresh; ++i) {
    budget.OnFreshRequest();
    if (budget.TryConsume()) ++granted;
  }
  EXPECT_LE(granted, static_cast<int>(ratio * fresh + burst) + 1);
  // And the budget is not overly stingy: nearly all of the allowance is
  // actually usable.
  EXPECT_GE(granted, static_cast<int>(ratio * fresh));
}

TEST(RetryBudget, ZeroRatioDisablesWithdrawalsEntirely) {
  // A bucket that can never refill is a fixed grant, not a budget: with
  // ratio 0 the very first withdrawal is denied, even though the
  // constructor seeded the bucket at the burst cap. No amount of fresh
  // traffic changes that.
  RetryBudget budget(0.0, 2.0);
  EXPECT_FALSE(budget.TryConsume());
  for (int i = 0; i < 100; ++i) budget.OnFreshRequest();
  EXPECT_FALSE(budget.TryConsume());
  // The balance is untouched: denials withdraw nothing.
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

TEST(RetryBudget, BurstExhaustionThenRefillCadence) {
  // Drain the initial burst, then verify the refill cadence: at ratio
  // 0.25 every 4th fresh request funds exactly one withdrawal, and the
  // pattern repeats indefinitely with no drift.
  RetryBudget budget(0.25, 3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      budget.OnFreshRequest();
      EXPECT_FALSE(budget.TryConsume())
          << "cycle " << cycle << " fresh " << i;
    }
    budget.OnFreshRequest();
    EXPECT_TRUE(budget.TryConsume()) << "cycle " << cycle;
  }
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, ConcurrentAccountingNeverOverdraws) {
  const double ratio = 0.2;
  const double burst = 8.0;
  RetryBudget budget(ratio, burst);
  const int kThreads = 4;
  const int kFreshPerThread = 50000;
  std::vector<int> granted(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kFreshPerThread; ++i) {
        budget.OnFreshRequest();
        if (budget.TryConsume()) ++granted[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  int total = 0;
  for (int g : granted) total += g;
  const int fresh = kThreads * kFreshPerThread;
  // Withdrawals can never exceed deposits + the initial burst, regardless
  // of interleaving.
  EXPECT_LE(total, static_cast<int>(ratio * fresh + burst) + 1);
  EXPECT_GE(budget.tokens(), 0.0);
}

TEST(RetryBudget, ConcurrentWithdrawalsGrantExactlyTheBurst) {
  // With no deposits, concurrent withdrawers split exactly the seeded
  // burst between them — never one token more, never one fewer — for any
  // interleaving. (Run under TSan this also proves the single-atomic
  // bucket is race-free.)
  const int kThreads = 4;
  const int kAttemptsPerThread = 10000;
  const double kBurst = 16.0;
  RetryBudget budget(0.1, kBurst);
  std::vector<int> granted(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (budget.TryConsume()) ++granted[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  int total = 0;
  for (int g : granted) total += g;
  EXPECT_EQ(total, static_cast<int>(kBurst));
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

}  // namespace
}  // namespace cot::cluster
