// Gray-failure injection and defense tests: the seeded gray fault modes
// (sustained slow + jitter, asymmetric degradation, intermittent stalls)
// never fail a request — so breakers never trip — while the health-driven
// defense quarantines the gray shard, keeps probing it, and preserves
// every conservation identity, including the DistCache three-replica
// invalidation identity under mid-run quarantine and cache-tier reset.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/distcache_router.h"
#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "workload/op_stream.h"

namespace cot::cluster {
namespace {

FaultEvent GraySlow(ServerId server, uint64_t start, uint64_t end,
                    double factor, double jitter = 0.0) {
  FaultEvent e;
  e.server = server;
  e.type = FaultType::kGray;
  e.start_op = start;
  e.end_op = end;
  e.slow_factor = factor;
  e.jitter = jitter;
  return e;
}

// --- Parsing the --gray-* specs. ---

TEST(GrayParseTest, ParsesAllThreeGrayModes) {
  auto schedule = ParseFaultSchedule(
      /*crash=*/"", /*transient=*/"", /*slow=*/"",
      /*gray_slow=*/"1:100:200:10:0.25",
      /*gray_asym=*/"2:300:400:8:0.5",
      /*gray_stall=*/"3:500:600:0.1:20", /*seed=*/7);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->events.size(), 3u);
  EXPECT_EQ(schedule->seed, 7u);

  const FaultEvent& slow = schedule->events[0];
  EXPECT_EQ(slow.type, FaultType::kGray);
  EXPECT_EQ(slow.server, 1u);
  EXPECT_EQ(slow.start_op, 100u);
  EXPECT_EQ(slow.end_op, 200u);
  EXPECT_DOUBLE_EQ(slow.slow_factor, 10.0);
  EXPECT_DOUBLE_EQ(slow.jitter, 0.25);
  EXPECT_DOUBLE_EQ(slow.client_fraction, 1.0);

  const FaultEvent& asym = schedule->events[1];
  EXPECT_EQ(asym.type, FaultType::kGray);
  EXPECT_DOUBLE_EQ(asym.slow_factor, 8.0);
  EXPECT_DOUBLE_EQ(asym.client_fraction, 0.5);
  EXPECT_DOUBLE_EQ(asym.jitter, 0.0);

  const FaultEvent& stall = schedule->events[2];
  EXPECT_EQ(stall.type, FaultType::kGray);
  EXPECT_DOUBLE_EQ(stall.stall_probability, 0.1);
  EXPECT_DOUBLE_EQ(stall.stall_factor, 20.0);
  // A stall entry degrades only intermittently: the sustained factor is 1.
  EXPECT_DOUBLE_EQ(stall.slow_factor, 1.0);

  EXPECT_TRUE(schedule->Validate(4).ok());
  EXPECT_EQ(ToString(FaultType::kGray), "gray");
}

TEST(GrayParseTest, RejectsOutOfRangeParameters) {
  struct Case {
    const char* gray_slow;
    const char* gray_asym;
    const char* gray_stall;
  };
  const Case bad[] = {
      {"1:0:10:0.5:0", "", ""},    // factor < 1
      {"1:0:10:2:1.0", "", ""},    // jitter must be < 1
      {"1:0:10:2:-0.1", "", ""},   // jitter negative
      {"", "1:0:10:2:0", ""},      // fraction must be > 0
      {"", "1:0:10:2:1.5", ""},    // fraction > 1
      {"", "", "1:0:10:1.5:2"},    // stall probability > 1
      {"", "", "1:0:10:0.5:0.5"},  // stall factor < 1
  };
  for (const Case& c : bad) {
    SCOPED_TRACE(std::string(c.gray_slow) + "|" + c.gray_asym + "|" +
                 c.gray_stall);
    auto schedule = ParseFaultSchedule("", "", "", c.gray_slow, c.gray_asym,
                                       c.gray_stall, 7);
    if (schedule.ok()) {
      EXPECT_FALSE(schedule->Validate(4).ok());
    }
  }
}

// --- Injector semantics. ---

TEST(GrayInjectorTest, GrayNeverFailsAndJitterStaysBounded) {
  FaultSchedule schedule;
  schedule.events = {GraySlow(1, 0, 10000, 10.0, 0.3)};
  FaultInjector injector(schedule);
  double lo = 1e9, hi = 0.0;
  for (uint64_t op = 0; op < 10000; ++op) {
    FaultInjector::Decision d = injector.Evaluate(0, op, 1, 0);
    EXPECT_FALSE(d.fail);
    EXPECT_FALSE(d.crashed);
    EXPECT_TRUE(d.gray);
    // factor * (1 + jitter * u), u in [-1, 1): [7, 13).
    EXPECT_GE(d.slow_factor, 10.0 * 0.7);
    EXPECT_LT(d.slow_factor, 10.0 * 1.3);
    lo = std::min(lo, d.slow_factor);
    hi = std::max(hi, d.slow_factor);
  }
  // The jitter draws actually spread — a constant factor would mean the
  // jitter stream is dead.
  EXPECT_GT(hi - lo, 10.0 * 0.3);
  // Outside the window and off the shard: clean.
  EXPECT_FALSE(injector.Evaluate(0, 10001, 1, 0).gray);
  EXPECT_FALSE(injector.Evaluate(0, 5, 2, 0).gray);
  EXPECT_DOUBLE_EQ(injector.Evaluate(0, 10001, 1, 0).slow_factor, 1.0);
}

TEST(GrayInjectorTest, DecisionsAreStatelessAndReproducible) {
  FaultSchedule schedule;
  schedule.events = {GraySlow(0, 0, 5000, 6.0, 0.4)};
  FaultInjector a(schedule);
  FaultInjector b(schedule);
  for (uint64_t op = 0; op < 5000; op += 7) {
    for (uint32_t attempt = 0; attempt < 3; ++attempt) {
      FaultInjector::Decision da = a.Evaluate(3, op, 0, attempt);
      // Same tuple, any injector instance, any call order: same decision.
      FaultInjector::Decision db = b.Evaluate(3, op, 0, attempt);
      EXPECT_DOUBLE_EQ(da.slow_factor, db.slow_factor);
      EXPECT_EQ(da.gray, db.gray);
      FaultInjector::Decision da2 = a.Evaluate(3, op, 0, attempt);
      EXPECT_DOUBLE_EQ(da.slow_factor, da2.slow_factor);
    }
  }
}

TEST(GrayInjectorTest, AsymmetricMembershipIsStablePerClientWindow) {
  FaultSchedule schedule;
  FaultEvent e = GraySlow(2, 0, 2000, 5.0);
  e.client_fraction = 0.5;
  schedule.events = {e};
  FaultInjector injector(schedule);
  int observers = 0;
  const uint32_t kClients = 64;
  for (uint32_t client = 0; client < kClients; ++client) {
    bool first = injector.Evaluate(client, 0, 2, 0).gray;
    // Membership must not flap inside the window: a degraded NIC is
    // visible (or not) from a given rack for the whole incident.
    for (uint64_t op = 1; op < 2000; op += 97) {
      EXPECT_EQ(injector.Evaluate(client, op, 2, 0).gray, first)
          << "client " << client << " op " << op;
    }
    if (first) ++observers;
  }
  // Roughly half the clients observe (seeded draw; generous tolerance).
  EXPECT_GT(observers, static_cast<int>(kClients / 4));
  EXPECT_LT(observers, static_cast<int>(kClients * 3 / 4));
}

TEST(GrayInjectorTest, StallFrequencyMatchesProbability) {
  FaultSchedule schedule;
  FaultEvent e = GraySlow(0, 0, 20000, 1.0);
  e.stall_probability = 0.2;
  e.stall_factor = 30.0;
  schedule.events = {e};
  FaultInjector injector(schedule);
  int stalls = 0;
  for (uint64_t op = 0; op < 20000; ++op) {
    FaultInjector::Decision d = injector.Evaluate(1, op, 0, 0);
    EXPECT_TRUE(d.gray);
    if (d.slow_factor > 1.0) {
      EXPECT_DOUBLE_EQ(d.slow_factor, 30.0);
      ++stalls;
    }
  }
  EXPECT_NEAR(static_cast<double>(stalls) / 20000.0, 0.2, 0.02);
}

TEST(GrayInjectorTest, ComposesWithPlainSlowViaMax) {
  FaultSchedule schedule;
  FaultEvent slow;
  slow.server = 0;
  slow.type = FaultType::kSlow;
  slow.start_op = 0;
  slow.end_op = 1000;
  slow.slow_factor = 7.0;
  schedule.events = {slow, GraySlow(0, 0, 1000, 3.0)};
  FaultInjector injector(schedule);
  FaultInjector::Decision d = injector.Evaluate(0, 500, 0, 0);
  EXPECT_TRUE(d.gray);
  // Overlapping degradations do not stack multiplicatively — the shard is
  // as slow as its worst affliction.
  EXPECT_DOUBLE_EQ(d.slow_factor, 7.0);
}

// --- Engine integration: gray is invisible to failure counting. ---

ExperimentConfig GrayRunConfig() {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 20000;
  config.num_clients = 4;
  config.total_ops = 120000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 0.99;
  phase.read_fraction = 0.95;
  config.phases = {phase};
  config.faults.events = {GraySlow(1, 1000, 15000, 10.0, 0.2)};
  return config;
}

TEST(GrayEngineTest, UndefendedRunDegradesOnlyInLatency) {
  ExperimentConfig config = GrayRunConfig();
  auto result = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(result.ok()) << result.status();
  const FrontendStats& a = result->aggregate;
  // The shard is slow but alive: nothing fails, nothing retries, no
  // breaker trips, no failovers — the gray window is invisible to every
  // failure-count defense.
  EXPECT_EQ(a.failed_requests, 0u);
  EXPECT_EQ(a.retries, 0u);
  EXPECT_EQ(a.breaker_trips, 0u);
  EXPECT_EQ(a.failovers, 0u);
  EXPECT_EQ(a.degraded_ops, 0u);
  EXPECT_GT(a.slow_ops, 0u);
  // Undefended: no health machinery ran, so gray ops are not even counted.
  EXPECT_EQ(a.gray_ops, 0u);
  EXPECT_EQ(a.lameduck_entries, 0u);
  EXPECT_EQ(a.hedges_sent, 0u);
  EXPECT_EQ(a.lameduck_bypasses, 0u);
  EXPECT_EQ(a.updates, a.invalidations + a.lost_invalidations);
  EXPECT_EQ(a.lost_invalidations, 0u);
}

TEST(GrayEngineTest, DefendedRunQuarantinesAndKeepsIdentities) {
  ExperimentConfig undefended = GrayRunConfig();
  auto base = RunExperiment(undefended, CacheFactory{});
  ASSERT_TRUE(base.ok()) << base.status();

  ExperimentConfig config = GrayRunConfig();
  config.failure_policy.health_enabled = true;
  config.failure_policy.hedging_enabled = true;
  config.failure_policy.retry_budget_ratio = 0.5;
  auto result = RunExperiment(config, CacheFactory{});
  ASSERT_TRUE(result.ok()) << result.status();
  const FrontendStats& a = result->aggregate;

  // The defense engaged: the gray shard went lameduck, bulk reads
  // bypassed to storage, probes kept watching it, and it was released
  // after the window.
  EXPECT_GT(a.gray_ops, 0u);
  EXPECT_GT(a.lameduck_entries, 0u);
  EXPECT_GT(a.lameduck_bypasses, 0u);
  EXPECT_GT(a.lameduck_probes, 0u);
  EXPECT_GE(a.lameduck_exits, a.lameduck_entries - config.num_clients);
  EXPECT_GT(a.hedges_sent, 0u);
  // Hedge accounting identity — every trigger meets exactly one fate.
  EXPECT_EQ(a.hedges_sent,
            a.hedges_won + a.hedges_lost + a.hedges_suppressed);
  // Still zero hard failures: quarantine is not fencing.
  EXPECT_EQ(a.failed_requests, 0u);
  EXPECT_EQ(a.breaker_trips, 0u);
  // The bypasses actually moved load off the gray shard.
  EXPECT_LT(result->per_server_lookups[1], base->per_server_lookups[1]);
  // Read conservation: every read is a local hit, a shard lookup, a
  // degraded/failover read, or a lameduck bypass.
  EXPECT_EQ(a.reads, a.local_hits + a.backend_lookups + a.degraded_ops +
                         a.failovers + a.lameduck_bypasses);
  // Invalidation conservation is untouched by quarantine: lameduck shards
  // keep receiving every delete.
  EXPECT_EQ(a.updates, a.invalidations + a.lost_invalidations);
  EXPECT_EQ(a.lost_invalidations, 0u);
}

// --- Satellite regression: DistCache conservation under quarantine. ---

TEST(GrayDistCacheTest, InvalidationConservationSurvivesQuarantineAndReset) {
  // A gray cache-tier node gets quarantined mid-run (health scoring on the
  // delivering client), then the whole tier is reset — through all of
  // which updates * 3 == invalidations + lost_invalidations must hold:
  // AllReplicas always fans out to both candidates plus the owner, and
  // neither lameduck nor a tier reset may swallow a delete.
  CacheCluster cluster(4, 2000);
  std::vector<ServerId> tier;
  for (int i = 0; i < 4; ++i) tier.push_back(cluster.AddCacheNode());
  DistCacheConfig dc;
  dc.hot_keys = 16;
  dc.epoch_ops = 128;
  DistCacheRouter router(tier, dc);
  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&router);

  FaultSchedule schedule;
  schedule.events = {GraySlow(tier[0], 0, 40000, 12.0, 0.1)};
  FaultInjector injector(schedule);
  FailurePolicy policy;
  policy.health_enabled = true;
  client.SetFaultInjector(&injector, /*client_id=*/0, policy);

  // Hot, small key range: the tracker promotes these keys fast and the
  // tier serves real traffic (so tier[0] actually gets observed).
  auto drive = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      uint64_t key = static_cast<uint64_t>(i) % 64;
      if (i % 10 == 9) {
        client.Set(key, static_cast<uint64_t>(i));
      } else {
        client.Get(key);
      }
    }
  };
  drive(20000);
  EXPECT_GT(client.stats().gray_ops, 0u)
      << "the gray cache node was never observed — the scenario is vacuous";
  EXPECT_GT(client.stats().lameduck_entries, 0u);
  EXPECT_LT(router.HealthWeight(tier[0]), 1.0)
      << "quarantine must reduce the node's p2c weight";

  // Mid-run cache-tier reset (elastic reconfiguration): per the router
  // contract every node is flushed cold, and health weights reset.
  router.ResetCacheTier(tier);
  for (ServerId node : tier) cluster.ForceColdRestart(node);
  EXPECT_DOUBLE_EQ(router.HealthWeight(tier[0]), 1.0);
  drive(20000);

  const FrontendStats& s = client.stats();
  EXPECT_EQ(s.updates * 3, s.invalidations + s.lost_invalidations)
      << "updates=" << s.updates << " invalidations=" << s.invalidations
      << " lost=" << s.lost_invalidations;
  // Gray never fails requests, so nothing should actually be lost.
  EXPECT_EQ(s.lost_invalidations, 0u);
  EXPECT_EQ(s.failed_requests, 0u);
}

}  // namespace
}  // namespace cot::cluster
