// Tests for the live migration / warm handoff path: topology mutations
// drain misowned keys to their new owners instead of dropping them cold,
// and the storage-backed adopt step guarantees no stale copy can ride
// along.

#include <gtest/gtest.h>

#include "cluster/cache_cluster.h"
#include "cluster/churn_schedule.h"
#include "cluster/frontend_client.h"

namespace cot::cluster {
namespace {

constexpr uint64_t kKeys = 2000;

void Preload(CacheCluster& cluster) {
  for (uint64_t key = 0; key < kKeys; ++key) {
    cluster.server(cluster.OwnerOf(key))
        .Set(key, StorageLayer::InitialValue(key));
  }
  cluster.ResetServerCounters();
}

uint64_t TotalResident(const CacheCluster& cluster) {
  uint64_t total = 0;
  for (ServerId id = 0; id < cluster.server_count(); ++id) {
    total += cluster.server(id).size();
  }
  return total;
}

TEST(LiveMigrationTest, AddServerHandsItsRangeOverWarm) {
  CacheCluster cluster(2, kKeys);
  Preload(cluster);

  ServerId added = cluster.AddServer();
  EXPECT_GT(cluster.server(added).size(), 0u)
      << "the newcomer must receive its range, not start cold";
  EXPECT_GT(cluster.server(added).adopted_count(), 0u);
  EXPECT_EQ(cluster.server(added).set_count(), 0u)
      << "migration inserts count as adoptions, not client sets";
  EXPECT_EQ(TotalResident(cluster), kKeys)
      << "handoff moves keys, it neither drops nor duplicates them";
  EXPECT_EQ(cluster.topology_stats().keys_migrated,
            cluster.server(added).size());

  // Every key now reads warm through a client: backend hits only.
  FrontendClient client(&cluster, nullptr);
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));
  }
  EXPECT_EQ(client.stats().backend_hits, kKeys);
  EXPECT_EQ(client.stats().storage_reads, 0u)
      << "a warm handoff must not cause a cold-miss storm";
}

TEST(LiveMigrationTest, RemoveServerDrainsContentToSuccessors) {
  CacheCluster cluster(3, kKeys);
  Preload(cluster);
  uint64_t doomed_resident = cluster.server(1).size();
  ASSERT_GT(doomed_resident, 0u);

  ASSERT_TRUE(cluster.RemoveServer(1).ok());
  EXPECT_EQ(cluster.server(1).size(), 0u);
  EXPECT_EQ(TotalResident(cluster), kKeys)
      << "scale-down drains the shard; nothing is lost";
  EXPECT_GE(cluster.topology_stats().keys_migrated, doomed_resident);

  FrontendClient client(&cluster, nullptr);
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));
  }
  EXPECT_EQ(client.stats().backend_hits, kKeys);
  EXPECT_EQ(client.stats().storage_reads, 0u)
      << "scale-down must be a warm handoff, not a hit-rate cliff";
  EXPECT_TRUE(VerifyClusterInvariants(cluster).ok());
}

TEST(LiveMigrationTest, RejoinReclaimsRangesWarm) {
  CacheCluster cluster(3, kKeys);
  Preload(cluster);
  ASSERT_TRUE(cluster.RemoveServer(2).ok());
  ASSERT_TRUE(cluster.RejoinServer(2).ok());

  EXPECT_GT(cluster.server(2).size(), 0u)
      << "a rejoined shard reclaims its ranges with content";
  EXPECT_EQ(TotalResident(cluster), kKeys);

  FrontendClient client(&cluster, nullptr);
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));
  }
  EXPECT_EQ(client.stats().storage_reads, 0u);
  EXPECT_TRUE(VerifyClusterInvariants(cluster).ok());
}

// Regression for the stale-copy-migration hazard: a shard holding a copy
// whose invalidation was lost (e.g. in a crash window) must not hand that
// copy to a new owner. Migration re-reads every key from authoritative
// storage, so the hazard is impossible by construction.
TEST(LiveMigrationTest, StaleCopyCannotSurviveMigration) {
  CacheCluster cluster(3, kKeys);
  Preload(cluster);

  // Forge the hazard: key 42's shard copy is stale relative to storage
  // (as if an invalidation delete never arrived).
  ServerId owner = cluster.OwnerOf(42);
  cluster.server(owner).Set(42, /*stale value=*/111);
  cluster.storage().Set(42, /*fresh value=*/222);

  // Scale the stale shard away: its content drains to successors.
  ASSERT_TRUE(cluster.RemoveServer(owner).ok());
  ServerId new_owner = cluster.OwnerOf(42);
  ASSERT_NE(new_owner, owner);
  std::optional<uint64_t> adopted = cluster.server(new_owner).Get(42);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(*adopted, 222u)
      << "the adopted copy must come from authoritative storage";

  FrontendClient client(&cluster, nullptr);
  EXPECT_EQ(client.Get(42), 222) << "no stale read after the handoff";
  EXPECT_TRUE(VerifyClusterInvariants(cluster).ok());
}

TEST(LiveMigrationTest, MigrationPreservesLoadCounters) {
  // RemoveServer used to clear the doomed shard, zeroing its history.
  // Live migration drains content but keeps counters: load accounting
  // must survive scale events or imbalance series get holes.
  CacheCluster cluster(2, kKeys);
  Preload(cluster);
  FrontendClient client(&cluster, nullptr);
  for (uint64_t key = 0; key < 100; ++key) client.Get(key);
  uint64_t lookups_before = cluster.server(1).lookup_count();

  cluster.AddServer();
  ASSERT_TRUE(cluster.RemoveServer(1).ok());
  EXPECT_EQ(cluster.server(1).lookup_count(), lookups_before);
}

}  // namespace
}  // namespace cot::cluster
