// Unit tests for the churn-schedule parser, validator, and the seeded
// chaos-plan generator.

#include "cluster/churn_schedule.h"

#include <gtest/gtest.h>

namespace cot::cluster {
namespace {

TEST(ChurnScheduleTest, ParsesMixedSpec) {
  auto parsed = ParseChurnSchedule("add:2000,remove:1:5000,rejoin:1:8000");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ChurnSchedule& s = *parsed;
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].action, ChurnAction::kAddServer);
  EXPECT_EQ(s.events[0].at_op, 2000u);
  EXPECT_EQ(s.events[1].action, ChurnAction::kRemoveServer);
  EXPECT_EQ(s.events[1].server, 1u);
  EXPECT_EQ(s.events[1].at_op, 5000u);
  EXPECT_EQ(s.events[2].action, ChurnAction::kRejoinServer);
  EXPECT_EQ(s.events[2].server, 1u);
  EXPECT_EQ(s.events[2].at_op, 8000u);
}

TEST(ChurnScheduleTest, ParseSortsByOpClock) {
  auto parsed = ParseChurnSchedule("remove:2:9000,add:100");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->events[0].action, ChurnAction::kAddServer);
  EXPECT_EQ(parsed->events[1].action, ChurnAction::kRemoveServer);
}

TEST(ChurnScheduleTest, ParseEmptySpecIsEmptySchedule) {
  auto parsed = ParseChurnSchedule("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ChurnScheduleTest, ParseRejectsMalformedEntries) {
  EXPECT_FALSE(ParseChurnSchedule("add").ok());
  EXPECT_FALSE(ParseChurnSchedule("add:1:2").ok());
  EXPECT_FALSE(ParseChurnSchedule("remove:1").ok());
  EXPECT_FALSE(ParseChurnSchedule("remove:1:x").ok());
  EXPECT_FALSE(ParseChurnSchedule("shrink:1:5").ok());
  EXPECT_FALSE(ParseChurnSchedule("add:5,,remove:1:9").ok());
  EXPECT_FALSE(ParseChurnSchedule("add:-3").ok());
}

TEST(ChurnScheduleTest, ValidateAcceptsLegalSequence) {
  auto s = ParseChurnSchedule("add:100,remove:0:200,rejoin:0:300");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Validate(2).ok());
}

TEST(ChurnScheduleTest, ValidateRejectsRemovingUnknownOrRemovedServer) {
  auto unknown = ParseChurnSchedule("remove:7:100");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->Validate(4).ok());

  auto twice = ParseChurnSchedule("remove:1:100,remove:1:200");
  ASSERT_TRUE(twice.ok());
  EXPECT_FALSE(twice->Validate(4).ok());
}

TEST(ChurnScheduleTest, ValidateRejectsEmptyingTheTier) {
  auto s = ParseChurnSchedule("remove:0:100,remove:1:200");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->Validate(2).ok());
}

TEST(ChurnScheduleTest, ValidateRejectsRejoiningActiveServer) {
  auto s = ParseChurnSchedule("rejoin:0:100");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->Validate(2).ok());
}

TEST(ChurnScheduleTest, ValidateAcceptsRemovingChurnCreatedServer) {
  // The add at op 100 creates shard 4 (ids allocate densely); removing it
  // later is legal.
  auto s = ParseChurnSchedule("add:100,remove:4:200");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Validate(4).ok());
}

TEST(ChurnScheduleTest, CountHelpersTrackSimulatedTier) {
  auto s = ParseChurnSchedule("add:100,add:200,remove:1:300,remove:4:400");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->MaxServerCount(4), 6u);
  EXPECT_EQ(s->FinalActiveCount(4), 4u);

  ChurnSchedule empty;
  EXPECT_EQ(empty.MaxServerCount(8), 8u);
  EXPECT_EQ(empty.FinalActiveCount(8), 8u);
}

TEST(ChurnScheduleTest, ChaosPlanIsValidAndDeterministic) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ChaosOptions options;
    options.seed = seed;
    options.initial_servers = 4;
    options.horizon_ops = 10000;
    options.warmup_ops = 1000;
    options.churn_events = 6;
    options.fault_events = 5;
    ChaosPlan a = MakeChaosPlan(options);
    ChaosPlan b = MakeChaosPlan(options);

    // Determinism: same options, same plan.
    ASSERT_EQ(a.churn.events.size(), b.churn.events.size());
    for (size_t i = 0; i < a.churn.events.size(); ++i) {
      EXPECT_EQ(a.churn.events[i].at_op, b.churn.events[i].at_op);
      EXPECT_EQ(a.churn.events[i].action, b.churn.events[i].action);
      EXPECT_EQ(a.churn.events[i].server, b.churn.events[i].server);
    }
    ASSERT_EQ(a.faults.events.size(), b.faults.events.size());
    EXPECT_EQ(a.faults.seed, b.faults.seed);

    // Validity: the generated plan always passes its own validators.
    EXPECT_EQ(a.churn.events.size(), 6u);
    EXPECT_TRUE(a.churn.Validate(options.initial_servers).ok())
        << a.churn.Validate(options.initial_servers);
    EXPECT_EQ(a.faults.events.size(), 5u);
    EXPECT_TRUE(
        a.faults.Validate(a.churn.MaxServerCount(options.initial_servers))
            .ok());

    // Every event lands inside [warmup, horizon).
    for (const ChurnEvent& e : a.churn.events) {
      EXPECT_GE(e.at_op, options.warmup_ops);
      EXPECT_LT(e.at_op, options.horizon_ops);
    }
    for (const FaultEvent& f : a.faults.events) {
      EXPECT_GE(f.start_op, options.warmup_ops);
      EXPECT_LT(f.start_op, f.end_op);
      EXPECT_LE(f.end_op, options.horizon_ops);
    }
  }
}

TEST(ChurnScheduleTest, DifferentSeedsGiveDifferentPlans) {
  ChaosOptions options;
  options.initial_servers = 4;
  options.churn_events = 8;
  options.seed = 1;
  ChaosPlan a = MakeChaosPlan(options);
  options.seed = 2;
  ChaosPlan b = MakeChaosPlan(options);
  bool differs = a.churn.events.size() != b.churn.events.size();
  for (size_t i = 0; !differs && i < a.churn.events.size(); ++i) {
    differs = a.churn.events[i].at_op != b.churn.events[i].at_op ||
              a.churn.events[i].action != b.churn.events[i].action;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnScheduleTest, ToStringCoversAllActions) {
  EXPECT_EQ(ToString(ChurnAction::kAddServer), "add_server");
  EXPECT_EQ(ToString(ChurnAction::kRemoveServer), "remove_server");
  EXPECT_EQ(ToString(ChurnAction::kRejoinServer), "rejoin_server");
}

}  // namespace
}  // namespace cot::cluster
