#include "cluster/fault_injector.h"

#include <gtest/gtest.h>

namespace cot::cluster {
namespace {

FaultSchedule OneEvent(FaultEvent e, uint64_t seed = 123) {
  FaultSchedule schedule;
  schedule.events.push_back(e);
  schedule.seed = seed;
  return schedule;
}

TEST(FaultInjectorTest, CrashWindowFailsEveryAttempt) {
  FaultEvent e;
  e.server = 1;
  e.type = FaultType::kCrash;
  e.start_op = 10;
  e.end_op = 20;
  FaultInjector injector(OneEvent(e));

  for (uint32_t attempt = 0; attempt < 4; ++attempt) {
    auto d = injector.Evaluate(/*client_id=*/0, /*op_clock=*/15, 1, attempt);
    EXPECT_TRUE(d.fail);
    EXPECT_TRUE(d.crashed);
  }
  // Half-open window: start inclusive, end exclusive.
  EXPECT_TRUE(injector.Evaluate(0, 10, 1, 0).fail);
  EXPECT_FALSE(injector.Evaluate(0, 9, 1, 0).fail);
  EXPECT_FALSE(injector.Evaluate(0, 20, 1, 0).fail);
  // Other shards are untouched.
  EXPECT_FALSE(injector.Evaluate(0, 15, 0, 0).fail);
  EXPECT_FALSE(injector.Evaluate(0, 15, 7, 0).fail);
}

TEST(FaultInjectorTest, InCrashWindowMatchesEvaluate) {
  FaultEvent e;
  e.server = 0;
  e.type = FaultType::kCrash;
  e.start_op = 5;
  e.end_op = 8;
  FaultInjector injector(OneEvent(e));
  EXPECT_FALSE(injector.InCrashWindow(4, 0));
  EXPECT_TRUE(injector.InCrashWindow(5, 0));
  EXPECT_TRUE(injector.InCrashWindow(7, 0));
  EXPECT_FALSE(injector.InCrashWindow(8, 0));
  EXPECT_FALSE(injector.InCrashWindow(6, 1));
}

TEST(FaultInjectorTest, CrashGenerationCountsEndedWindows) {
  FaultSchedule schedule;
  FaultEvent a;
  a.server = 2;
  a.type = FaultType::kCrash;
  a.start_op = 10;
  a.end_op = 20;
  FaultEvent b = a;
  b.start_op = 50;
  b.end_op = 60;
  schedule.events = {a, b};
  FaultInjector injector(schedule);

  EXPECT_EQ(injector.CrashGeneration(0, 2), 0u);
  EXPECT_EQ(injector.CrashGeneration(19, 2), 0u);  // still inside
  EXPECT_EQ(injector.CrashGeneration(20, 2), 1u);  // window just ended
  EXPECT_EQ(injector.CrashGeneration(59, 2), 1u);
  EXPECT_EQ(injector.CrashGeneration(60, 2), 2u);
  EXPECT_EQ(injector.CrashGeneration(100, 1), 0u);  // other shard
}

TEST(FaultInjectorTest, TransientCertainFailureAlwaysFails) {
  FaultEvent e;
  e.server = 0;
  e.type = FaultType::kTransient;
  e.start_op = 0;
  e.end_op = 100;
  e.probability = 1.0;
  FaultInjector injector(OneEvent(e));
  for (uint64_t clock = 0; clock < 100; ++clock) {
    auto d = injector.Evaluate(3, clock, 0, 0);
    EXPECT_TRUE(d.fail);
    EXPECT_FALSE(d.crashed);  // transient failures are retryable
  }
}

TEST(FaultInjectorTest, TransientDrawsAreDeterministicAndVaried) {
  FaultEvent e;
  e.server = 0;
  e.type = FaultType::kTransient;
  e.start_op = 0;
  e.end_op = 10000;
  e.probability = 0.5;
  FaultInjector a(OneEvent(e, 99));
  FaultInjector b(OneEvent(e, 99));

  uint64_t failures = 0;
  bool attempt_outcomes_differ = false;
  for (uint64_t clock = 0; clock < 10000; ++clock) {
    auto d0 = a.Evaluate(1, clock, 0, 0);
    // Same tuple, same seed -> same decision (stateless oracle).
    EXPECT_EQ(d0.fail, b.Evaluate(1, clock, 0, 0).fail);
    if (d0.fail) ++failures;
    if (d0.fail != a.Evaluate(1, clock, 0, 1).fail) {
      attempt_outcomes_differ = true;
    }
  }
  // Roughly half fail at p = 0.5 (generous tolerance, fixed seed).
  EXPECT_GT(failures, 4000u);
  EXPECT_LT(failures, 6000u);
  // Retries re-draw: the attempt index must change some outcomes,
  // otherwise bounded retries could never succeed inside a window.
  EXPECT_TRUE(attempt_outcomes_differ);
}

TEST(FaultInjectorTest, SlowWindowDegradesWithoutFailing) {
  FaultEvent e;
  e.server = 3;
  e.type = FaultType::kSlow;
  e.start_op = 0;
  e.end_op = 50;
  e.slow_factor = 4.0;
  FaultInjector injector(OneEvent(e));
  auto d = injector.Evaluate(0, 25, 3, 0);
  EXPECT_FALSE(d.fail);
  EXPECT_DOUBLE_EQ(d.slow_factor, 4.0);
  EXPECT_DOUBLE_EQ(injector.Evaluate(0, 50, 3, 0).slow_factor, 1.0);
}

TEST(FaultInjectorTest, ValidateRejectsMalformedEvents) {
  FaultEvent e;
  e.server = 8;
  e.type = FaultType::kCrash;
  e.start_op = 0;
  e.end_op = 10;
  EXPECT_FALSE(OneEvent(e).Validate(/*num_servers=*/8).ok());
  e.server = 0;
  EXPECT_TRUE(OneEvent(e).Validate(8).ok());

  e.end_op = 0;  // empty window
  EXPECT_FALSE(OneEvent(e).Validate(8).ok());

  FaultEvent t;
  t.type = FaultType::kTransient;
  t.start_op = 0;
  t.end_op = 10;
  t.probability = 1.5;
  EXPECT_FALSE(OneEvent(t).Validate(8).ok());
  t.probability = 0.0;
  EXPECT_FALSE(OneEvent(t).Validate(8).ok());

  FaultEvent s;
  s.type = FaultType::kSlow;
  s.start_op = 0;
  s.end_op = 10;
  s.slow_factor = 0.5;
  EXPECT_FALSE(OneEvent(s).Validate(8).ok());
}

TEST(FaultInjectorTest, ParseFaultScheduleRoundTrips) {
  auto parsed = ParseFaultSchedule("1:100:200,2:300:400", "0:0:1000:0.25",
                                   "3:50:60:8", /*seed=*/7);
  ASSERT_TRUE(parsed.ok());
  const FaultSchedule& s = parsed.value();
  EXPECT_EQ(s.seed, 7u);
  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].type, FaultType::kCrash);
  EXPECT_EQ(s.events[0].server, 1u);
  EXPECT_EQ(s.events[0].start_op, 100u);
  EXPECT_EQ(s.events[0].end_op, 200u);
  EXPECT_EQ(s.events[1].server, 2u);
  EXPECT_EQ(s.events[2].type, FaultType::kTransient);
  EXPECT_DOUBLE_EQ(s.events[2].probability, 0.25);
  EXPECT_EQ(s.events[3].type, FaultType::kSlow);
  EXPECT_DOUBLE_EQ(s.events[3].slow_factor, 8.0);
  EXPECT_TRUE(s.Validate(4).ok());
}

TEST(FaultInjectorTest, ParseFaultScheduleRejectsGarbage) {
  EXPECT_FALSE(ParseFaultSchedule("1:100", "", "", 0).ok());       // fields
  EXPECT_FALSE(ParseFaultSchedule("a:1:2", "", "", 0).ok());       // non-num
  EXPECT_FALSE(ParseFaultSchedule("", "0:0:10", "", 0).ok());      // fields
  EXPECT_FALSE(ParseFaultSchedule("1:1:2,", "", "", 0).ok());      // empty
  EXPECT_TRUE(ParseFaultSchedule("", "", "", 0).ok());             // empty ok
  EXPECT_TRUE(ParseFaultSchedule("", "", "", 0).value().empty());
}

}  // namespace
}  // namespace cot::cluster
