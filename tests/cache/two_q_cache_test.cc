#include "cache/two_q_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cot::cache {
namespace {

void Access(TwoQCache& cache, Key k) {
  if (!cache.Get(k).has_value()) cache.Put(k, k * 10);
}

TEST(TwoQCacheTest, PutThenGet) {
  TwoQCache cache(8);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(cache.name(), "2q");
}

TEST(TwoQCacheTest, NewKeysEnterA1in) {
  TwoQCache cache(8);
  cache.Put(1, 11);
  auto sizes = cache.queue_sizes();
  EXPECT_EQ(sizes.a1in, 1u);
  EXPECT_EQ(sizes.am, 0u);
}

TEST(TwoQCacheTest, PromotionRequiresGhostHit) {
  // Keys are promoted to Am only when re-referenced after leaving A1in.
  TwoQCache cache(4, /*kin_fraction=*/0.5, /*kout_fraction=*/1.0);
  // Fill beyond A1in so key 1 is ghosted.
  Access(cache, 1);
  Access(cache, 2);
  Access(cache, 3);
  Access(cache, 4);
  Access(cache, 5);  // reclaim drains A1in; 1 ghosts into A1out
  EXPECT_FALSE(cache.Contains(1));
  Access(cache, 1);  // ghost hit -> promoted into Am
  EXPECT_TRUE(cache.Contains(1));
  auto sizes = cache.queue_sizes();
  EXPECT_GE(sizes.am, 1u);
}

TEST(TwoQCacheTest, ScanResistance) {
  // A hot working set in Am survives a long one-shot scan (LRU would lose
  // everything).
  TwoQCache cache(8, 0.25, 0.5);
  // Build a hot set: get keys into Am via ghost promotion.
  for (int round = 0; round < 20; ++round) {
    for (Key k = 0; k < 2; ++k) Access(cache, k);
    Access(cache, 100 + static_cast<Key>(round % 10));
  }
  ASSERT_TRUE(cache.Contains(0));
  ASSERT_TRUE(cache.Contains(1));
  // The scan: 500 one-shot keys.
  for (Key k = 1000; k < 1500; ++k) Access(cache, k);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(TwoQCacheTest, CapacityNeverExceeded) {
  TwoQCache cache(8);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    Access(cache, rng.NextBelow(100));
    ASSERT_LE(cache.size(), 8u);
  }
}

TEST(TwoQCacheTest, GhostListBounded) {
  TwoQCache cache(8, 0.25, 0.5);  // kout = 4
  for (Key k = 0; k < 1000; ++k) Access(cache, k);
  EXPECT_LE(cache.queue_sizes().a1out, 4u);
}

TEST(TwoQCacheTest, InvalidateResidentAndGhostPaths) {
  TwoQCache cache(4, 0.5, 1.0);
  Access(cache, 1);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.Invalidate(99);  // absent
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(TwoQCacheTest, ZeroCapacityNeverCaches) {
  TwoQCache cache(0);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(TwoQCacheTest, ResizeUnimplemented) {
  TwoQCache cache(8);
  EXPECT_EQ(cache.Resize(16).code(), StatusCode::kUnimplemented);
}

TEST(TwoQCacheTest, OverwriteUpdatesValue) {
  TwoQCache cache(4);
  cache.Put(1, 11);
  cache.Put(1, 99);
  EXPECT_EQ(*cache.Get(1), 99u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace cot::cache
