// Differential test: LrukCache against a brute-force reference that
// follows O'Neil et al.'s eviction rule literally — evict the resident
// page whose K-th most recent reference is oldest, infinite backward
// distance (fewer than K references) first, ties by least recent access.
// The heap-based production implementation must agree exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cache/lruk_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cache {
namespace {

// Minimal, obviously-correct LRU-K model (O(n) eviction scan).
class ReferenceLruK {
 public:
  ReferenceLruK(size_t capacity, size_t history_capacity, int k)
      : capacity_(capacity), history_capacity_(history_capacity), k_(k) {}

  bool Access(Key key) {  // returns hit/miss; read-through semantics
    ++clock_;
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      Record(it->second);
      return true;
    }
    // Miss: restore history if retained, then insert (evicting if full).
    std::deque<uint64_t> times;
    auto hist = history_.find(key);
    if (hist != history_.end()) {
      times = hist->second;
      history_.erase(hist);
      history_order_.erase(
          std::find(history_order_.begin(), history_order_.end(), key));
    }
    Record(times);
    if (resident_.size() >= capacity_ && capacity_ > 0) EvictOne();
    if (capacity_ > 0) resident_[key] = std::move(times);
    return false;
  }

  bool Contains(Key key) const { return resident_.count(key) != 0; }

 private:
  void Record(std::deque<uint64_t>& times) {
    times.push_front(clock_);
    while (times.size() > static_cast<size_t>(k_)) times.pop_back();
  }

  void EvictOne() {
    Key victim = 0;
    // Priority: (kth most recent or 0, last access); evict the smallest.
    std::pair<uint64_t, uint64_t> best{UINT64_MAX, UINT64_MAX};
    for (const auto& [key, times] : resident_) {
      uint64_t kth =
          times.size() >= static_cast<size_t>(k_) ? times[k_ - 1] : 0;
      uint64_t last = times.empty() ? 0 : times.front();
      std::pair<uint64_t, uint64_t> priority{kth, last};
      if (priority < best) {
        best = priority;
        victim = key;
      }
    }
    // Retire to bounded history.
    if (history_capacity_ > 0) {
      while (history_.size() >= history_capacity_) {
        Key oldest = history_order_.back();
        history_order_.pop_back();
        history_.erase(oldest);
      }
      history_order_.push_front(victim);
      history_[victim] = resident_[victim];
    }
    resident_.erase(victim);
  }

  size_t capacity_;
  size_t history_capacity_;
  int k_;
  uint64_t clock_ = 0;
  std::map<Key, std::deque<uint64_t>> resident_;
  std::map<Key, std::deque<uint64_t>> history_;
  std::deque<Key> history_order_;
};

struct DiffCase {
  const char* label;
  size_t capacity;
  size_t history;
  int k;
  uint64_t key_space;
  double skew;  // 0 = uniform random keys
  uint64_t seed;
};

class LrukDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(LrukDifferentialTest, MatchesReferenceModelExactly) {
  const DiffCase& param = GetParam();
  LrukCache impl(param.capacity, param.history, param.k);
  ReferenceLruK model(param.capacity, param.history, param.k);
  Rng rng(param.seed);
  std::unique_ptr<workload::ZipfianGenerator> zipf;
  if (param.skew > 0.0) {
    zipf = std::make_unique<workload::ZipfianGenerator>(param.key_space,
                                                        param.skew);
  }
  for (int i = 0; i < 20000; ++i) {
    Key key = zipf ? zipf->Next(rng) : rng.NextBelow(param.key_space);
    bool impl_hit = impl.Get(key).has_value();
    if (!impl_hit) impl.Put(key, key);
    bool model_hit = model.Access(key);
    ASSERT_EQ(impl_hit, model_hit)
        << "divergence at access " << i << " key " << key;
  }
  // Final resident sets agree.
  for (Key key = 0; key < param.key_space; ++key) {
    ASSERT_EQ(impl.Contains(key), model.Contains(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LrukDifferentialTest,
    ::testing::Values(
        DiffCase{"k2_small_zipf", 4, 16, 2, 100, 1.0999, 1},
        DiffCase{"k2_zipf099", 16, 64, 2, 1000, 0.99, 2},
        DiffCase{"k2_uniform", 8, 32, 2, 100, 0.0, 3},
        DiffCase{"k3", 8, 32, 3, 200, 0.99, 4},
        DiffCase{"k1_pure_lru", 8, 0, 1, 100, 0.99, 5},
        DiffCase{"no_history", 8, 0, 2, 200, 0.99, 6},
        DiffCase{"tiny_cache", 1, 4, 2, 50, 1.2, 7}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace cot::cache
