// Differential tests: every policy behind a SynchronizedCache decorator must
// behave bit-for-bit like the bare policy under the same op sequence, and
// CoT's admission filter must stay deterministic. Op sequences are seeded
// random interleavings of the full protocol (Get + miss-fill Put,
// Invalidate, Resize), so the comparison covers the paths real clients
// exercise, not hand-picked scenarios.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "cache/synchronized_cache.h"
#include "core/cot_cache.h"
#include "core/policy_factory.h"
#include "util/random.h"

namespace cot {
namespace {

std::unique_ptr<cache::Cache> MakeBare(const std::string& policy,
                                       size_t lines) {
  auto made = core::MakePolicy(policy, lines, /*tracker_ratio=*/4);
  EXPECT_TRUE(made.ok()) << policy;
  return std::move(made).value();
}

/// Drives `a` and `b` through the same seeded op interleaving, asserting
/// equality after every step: Get results, sizes, resize statuses, and the
/// full stats block.
void RunDifferential(cache::Cache* a, cache::Cache* b, uint64_t seed,
                     uint64_t ops, uint64_t key_space, bool try_resize) {
  Rng rng(seed);
  size_t base_capacity = a->capacity();
  ASSERT_EQ(base_capacity, b->capacity());
  for (uint64_t i = 0; i < ops; ++i) {
    uint64_t key = rng.NextBelow(key_space);
    double roll = rng.NextDouble();
    if (roll < 0.80) {
      std::optional<cache::Value> va = a->Get(key);
      std::optional<cache::Value> vb = b->Get(key);
      ASSERT_EQ(va.has_value(), vb.has_value()) << "op " << i;
      if (va.has_value()) {
        ASSERT_EQ(*va, *vb) << "op " << i;
      } else {
        // Miss-fill, the protocol's admission offer.
        cache::Value value = key * 2 + 1;
        a->Put(key, value);
        b->Put(key, value);
      }
    } else if (roll < 0.95) {
      a->Invalidate(key);
      b->Invalidate(key);
    } else if (try_resize) {
      // Grow/shrink within 2x of the base capacity; policies that cannot
      // resize (ARC) must at least refuse identically.
      size_t target = 1 + rng.NextBelow(2 * base_capacity);
      Status sa = a->Resize(target);
      Status sb = b->Resize(target);
      ASSERT_EQ(sa.code(), sb.code()) << "op " << i;
    }
    ASSERT_EQ(a->size(), b->size()) << "op " << i;
    ASSERT_EQ(a->Contains(key), b->Contains(key)) << "op " << i;
  }
  const cache::CacheStats& sa = a->stats();
  const cache::CacheStats& sb = b->stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.insertions, sb.insertions);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.invalidations, sb.invalidations);
  EXPECT_GT(sa.lookups(), 0u);
}

class DifferentialPolicyTest : public testing::TestWithParam<const char*> {};

TEST_P(DifferentialPolicyTest, SynchronizedDecoratorMatchesBarePolicy) {
  const std::string policy = GetParam();
  for (uint64_t seed : {1u, 77u, 4242u}) {
    std::unique_ptr<cache::Cache> bare = MakeBare(policy, 64);
    cache::SynchronizedCache wrapped(MakeBare(policy, 64));
    RunDifferential(&wrapped, bare.get(), seed, /*ops=*/20000,
                    /*key_space=*/512, /*try_resize=*/true);
  }
}

TEST_P(DifferentialPolicyTest, SameSeedSameTrajectory) {
  const std::string policy = GetParam();
  std::unique_ptr<cache::Cache> a = MakeBare(policy, 32);
  std::unique_ptr<cache::Cache> b = MakeBare(policy, 32);
  RunDifferential(a.get(), b.get(), /*seed=*/99, /*ops=*/20000,
                  /*key_space=*/200, /*try_resize=*/false);
}

INSTANTIATE_TEST_SUITE_P(Policies, DifferentialPolicyTest,
                         testing::Values("lru", "lfu", "arc", "lru-2", "cot"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DifferentialCotTest, AdmissionDecisionsDeterministicWithInvariants) {
  core::CotCache a(8, 32);
  core::CotCache b(8, 32);
  Rng rng(0xc07);
  for (uint64_t i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBelow(300);
    double roll = rng.NextDouble();
    if (roll < 0.9) {
      std::optional<cache::Value> va = a.Get(key);
      std::optional<cache::Value> vb = b.Get(key);
      ASSERT_EQ(va, vb) << "op " << i;
      if (!va.has_value()) {
        a.Put(key, key + 1);
        b.Put(key, key + 1);
      }
    } else {
      a.Invalidate(key);
      b.Invalidate(key);
    }
    if (i % 4096 == 0) {
      ASSERT_TRUE(a.CheckInvariants()) << "op " << i;
      ASSERT_EQ(a.size(), b.size()) << "op " << i;
    }
  }
  ASSERT_TRUE(a.CheckInvariants());
  ASSERT_TRUE(b.CheckInvariants());
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().insertions, b.stats().insertions);
}

TEST(DifferentialConcurrencyTest, SharedSynchronizedCacheConservesStats) {
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 25000;
  cache::SynchronizedCache shared(MakeBare("lru", 128));

  std::atomic<uint64_t> total_gets{0};
  std::atomic<uint64_t> total_invalidations{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, &total_gets, &total_invalidations, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      uint64_t gets = 0;
      uint64_t invalidations = 0;
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t key = rng.NextBelow(1024);
        if (rng.NextDouble() < 0.9) {
          ++gets;
          if (!shared.Get(key).has_value()) shared.Put(key, key);
        } else {
          ++invalidations;
          shared.Invalidate(key);
        }
      }
      total_gets += gets;
      total_invalidations += invalidations;
    });
  }
  for (std::thread& w : workers) w.join();

  const cache::CacheStats& s = shared.stats();
  // Conservation: every Get was either a hit or a miss; residency accounting
  // must balance under any interleaving.
  EXPECT_EQ(s.hits + s.misses, total_gets.load());
  EXPECT_LE(shared.size(), shared.capacity());
  // Residency accounting balances under any interleaving: LRU counts an
  // insertion per new resident entry, an eviction/invalidation per removal.
  EXPECT_EQ(s.insertions - s.evictions - s.invalidations,
            static_cast<uint64_t>(shared.size()))
      << "insertions " << s.insertions << " evictions " << s.evictions
      << " invalidations " << s.invalidations;
}

}  // namespace
}  // namespace cot
