// Parameterized contract tests: every replacement policy must honour the
// cache::Cache interface semantics regardless of its internal strategy.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "cache/arc_cache.h"
#include "cache/cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "cache/lruk_cache.h"
#include "cache/mq_cache.h"
#include "cache/two_q_cache.h"
#include "core/cot_cache.h"
#include "util/random.h"

namespace cot::cache {
namespace {

struct PolicyParam {
  std::string label;
  std::function<std::unique_ptr<Cache>(size_t capacity)> make;
};

class PolicyContractTest : public ::testing::TestWithParam<PolicyParam> {
 protected:
  std::unique_ptr<Cache> Make(size_t capacity) {
    return GetParam().make(capacity);
  }
};

TEST_P(PolicyContractTest, EmptyCacheMisses) {
  auto cache = Make(4);
  EXPECT_FALSE(cache->Get(1).has_value());
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(cache->size(), 0u);
}

TEST_P(PolicyContractTest, PutIntoFreeSpaceThenHit) {
  auto cache = Make(4);
  cache->Get(1);  // standard read-through order: miss first
  cache->Put(1, 111);
  auto v = cache->Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 111u);
  EXPECT_TRUE(cache->Contains(1));
}

TEST_P(PolicyContractTest, OverwriteReplacesValue) {
  auto cache = Make(4);
  cache->Get(1);
  cache->Put(1, 1);
  cache->Put(1, 2);
  EXPECT_EQ(*cache->Get(1), 2u);
  EXPECT_EQ(cache->size(), 1u);
}

TEST_P(PolicyContractTest, InvalidateRemovesResidentKey) {
  auto cache = Make(4);
  cache->Get(1);
  cache->Put(1, 1);
  cache->Invalidate(1);
  EXPECT_FALSE(cache->Contains(1));
  EXPECT_FALSE(cache->Get(1).has_value());
}

TEST_P(PolicyContractTest, InvalidateAbsentKeyIsSafe) {
  auto cache = Make(4);
  cache->Invalidate(12345);
  EXPECT_EQ(cache->size(), 0u);
}

TEST_P(PolicyContractTest, CapacityIsNeverExceeded) {
  auto cache = Make(8);
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(200);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
    ASSERT_LE(cache->size(), 8u);
  }
}

TEST_P(PolicyContractTest, ZeroCapacityNeverCaches) {
  auto cache = Make(0);
  cache->Get(1);
  cache->Put(1, 1);
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->Get(1).has_value());
}

TEST_P(PolicyContractTest, StatsCountersAreConsistent) {
  auto cache = Make(4);
  Rng rng(99);
  uint64_t lookups = 0;
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.NextBelow(50);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
    ++lookups;
  }
  EXPECT_EQ(cache->stats().lookups(), lookups);
  EXPECT_EQ(cache->stats().hits + cache->stats().misses, lookups);
  EXPECT_GT(cache->stats().HitRate(), 0.0);
  EXPECT_LE(cache->stats().HitRate(), 1.0);
}

TEST_P(PolicyContractTest, ResetStatsZeroesCountersKeepsContent) {
  auto cache = Make(4);
  cache->Get(1);
  cache->Put(1, 1);
  cache->ResetStats();
  EXPECT_EQ(cache->stats().lookups(), 0u);
  EXPECT_TRUE(cache->Contains(1));
}

TEST_P(PolicyContractTest, ContainsHasNoStatsSideEffects) {
  auto cache = Make(4);
  cache->Get(1);
  cache->Put(1, 1);
  uint64_t lookups_before = cache->stats().lookups();
  (void)cache->Contains(1);
  (void)cache->Contains(2);
  EXPECT_EQ(cache->stats().lookups(), lookups_before);
}

TEST_P(PolicyContractTest, NameIsNonEmpty) {
  auto cache = Make(2);
  EXPECT_FALSE(cache->name().empty());
}

TEST_P(PolicyContractTest, RepeatedHotKeyAlwaysHitsAfterAdmission) {
  auto cache = Make(4);
  cache->Get(7);
  cache->Put(7, 70);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache->Get(7).has_value()) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContractTest,
    ::testing::Values(
        PolicyParam{"lru",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<LruCache>(c);
                    }},
        PolicyParam{"lfu",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<LfuCache>(c);
                    }},
        PolicyParam{"arc",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<ArcCache>(c);
                    }},
        PolicyParam{"lru2",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<LrukCache>(c, 4 * c, 2);
                    }},
        PolicyParam{"twoq",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<TwoQCache>(c);
                    }},
        PolicyParam{"mq",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<MqCache>(c);
                    }},
        PolicyParam{"cot",
                    [](size_t c) -> std::unique_ptr<Cache> {
                      return std::make_unique<core::CotCache>(c, 4 * c);
                    }}),
    [](const ::testing::TestParamInfo<PolicyParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace cot::cache
