#include "cache/arc_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cot::cache {
namespace {

// Drives the cache with the standard read-through protocol.
void Access(ArcCache& cache, Key k) {
  if (!cache.Get(k).has_value()) cache.Put(k, k * 10);
}

TEST(ArcCacheTest, PutThenGet) {
  ArcCache cache(4);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
}

TEST(ArcCacheTest, NewKeysEnterT1) {
  ArcCache cache(4);
  cache.Put(1, 11);
  auto sizes = cache.list_sizes();
  EXPECT_EQ(sizes.t1, 1u);
  EXPECT_EQ(sizes.t2, 0u);
}

TEST(ArcCacheTest, HitPromotesToT2) {
  ArcCache cache(4);
  cache.Put(1, 11);
  cache.Get(1);
  auto sizes = cache.list_sizes();
  EXPECT_EQ(sizes.t1, 0u);
  EXPECT_EQ(sizes.t2, 1u);
}

TEST(ArcCacheTest, PureColdMissesDiscardWithoutGhosts) {
  // Case IV(a) with |T1| = c and B1 empty discards T1's LRU outright (the
  // ARC paper's exact rule): a pure stream of new keys leaves no ghosts.
  ArcCache cache(2);
  Access(cache, 1);
  Access(cache, 2);
  Access(cache, 3);
  auto sizes = cache.list_sizes();
  EXPECT_EQ(sizes.t1, 2u);
  EXPECT_EQ(sizes.b1, 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, EvictionFeedsGhostLists) {
  // With T2 occupied, REPLACE demotes T1's LRU into B1.
  ArcCache cache(2);
  Access(cache, 1);
  Access(cache, 1);  // 1 promoted to T2
  Access(cache, 2);  // T1 = {2}
  Access(cache, 3);  // REPLACE evicts 2 into B1
  auto sizes = cache.list_sizes();
  EXPECT_EQ(sizes.t1 + sizes.t2, 2u);
  EXPECT_EQ(sizes.b1, 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, GhostHitAdaptsP) {
  ArcCache cache(2);
  Access(cache, 1);
  Access(cache, 1);  // 1 -> T2
  Access(cache, 2);
  Access(cache, 3);  // 2 -> B1
  double p_before = cache.p();
  Access(cache, 2);  // B1 ghost hit: p grows
  EXPECT_GT(cache.p(), p_before);
  EXPECT_TRUE(cache.Contains(2));  // and the key is resident again, in T2
  auto sizes = cache.list_sizes();
  EXPECT_GE(sizes.t2, 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, CapacityNeverExceeded) {
  ArcCache cache(8);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    Access(cache, rng.NextBelow(100));
    ASSERT_LE(cache.size(), 8u);
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, FrequencyWorkloadKeepsHotKeysResident) {
  // 4 hot keys accessed constantly + scan noise: ARC should learn to hold
  // the hot keys in T2.
  ArcCache cache(8);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    Access(cache, rng.NextBelow(4));           // hot
    Access(cache, 100 + (i % 1000));           // scan
  }
  int resident_hot = 0;
  for (Key k = 0; k < 4; ++k) resident_hot += cache.Contains(k) ? 1 : 0;
  EXPECT_EQ(resident_hot, 4);
}

TEST(ArcCacheTest, InvalidateRemovesResident) {
  ArcCache cache(4);
  cache.Put(1, 11);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, InvalidateThenGhostPathStaysConsistent) {
  // Regression guard for the REPLACE-on-empty corner introduced by
  // Invalidate: fill, evict into ghosts, invalidate all residents, then
  // re-reference a ghost.
  ArcCache cache(2);
  Access(cache, 1);
  Access(cache, 2);
  Access(cache, 3);  // ghost created
  cache.Invalidate(2);
  cache.Invalidate(3);
  ASSERT_EQ(cache.size(), 0u);
  Access(cache, 1);  // ghost hit with empty resident lists
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcCacheTest, ZeroCapacityNeverCaches) {
  ArcCache cache(0);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(ArcCacheTest, ResizeIsUnimplemented) {
  ArcCache cache(4);
  Status s = cache.Resize(8);
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

TEST(ArcCacheTest, OverwriteUpdatesValue) {
  ArcCache cache(4);
  cache.Put(1, 11);
  cache.Put(1, 99);
  EXPECT_EQ(*cache.Get(1), 99u);
  EXPECT_EQ(cache.size(), 1u);
}

// Property: invariants hold across long random mixed workloads.
class ArcInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArcInvariantTest, RandomOpsKeepInvariants) {
  Rng rng(GetParam());
  ArcCache cache(1 + rng.NextBelow(16));
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(64);
    switch (rng.NextBelow(8)) {
      case 0:
        cache.Invalidate(k);
        break;
      default:
        Access(cache, k);
        break;
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(cache.CheckInvariants()) << "step " << i;
    }
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcInvariantTest,
                         ::testing::Values(1, 2, 3, 7, 11, 13));

}  // namespace
}  // namespace cot::cache
