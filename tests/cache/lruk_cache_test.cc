#include "cache/lruk_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cot::cache {
namespace {

void Access(LrukCache& cache, Key k) {
  if (!cache.Get(k).has_value()) cache.Put(k, k * 10);
}

TEST(LrukCacheTest, PutThenGet) {
  LrukCache cache(2, 8);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(cache.name(), "lru-2");
}

TEST(LrukCacheTest, SingleReferenceKeysEvictedFirst) {
  LrukCache cache(2, 8);
  Access(cache, 1);
  Access(cache, 1);  // key 1 has 2 references
  Access(cache, 2);  // key 2 has 1 reference (infinite 2-distance)
  Access(cache, 3);  // must evict 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LrukCacheTest, EvictsOldestKthReference) {
  LrukCache cache(2, 8);
  Access(cache, 1);
  Access(cache, 1);  // 1: refs at t1,t2 -> 2nd-recent = t1
  Access(cache, 2);
  Access(cache, 2);  // 2: refs at t3,t4 -> 2nd-recent = t3
  Access(cache, 1);  // 1: refs t5,t2 -> 2nd-recent = t2 < t3
  Access(cache, 3);  // evicts key 1 (oldest 2nd-recent)? No: t2 < t3 so 1 is victim
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LrukCacheTest, HistoryRestoresReferenceTimes) {
  LrukCache cache(1, 8);
  Access(cache, 1);
  Access(cache, 1);  // 1 is "seen twice"
  Access(cache, 2);  // evicts 1 into history
  EXPECT_EQ(cache.history_size(), 1u);
  Access(cache, 1);  // returns from history with restored times (now 3 refs)
  // 1 has a finite 2-distance, 2 had only one reference and was evicted to
  // history when 1 returned.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  Access(cache, 3);  // 3 has infinite 2-distance; 1 has finite -> evict...
  // Both candidates: resident is {1}; inserting 3 evicts 1 (the only key).
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LrukCacheTest, HistoryCapacityBounded) {
  LrukCache cache(1, 4);
  for (Key k = 0; k < 100; ++k) Access(cache, k);
  EXPECT_LE(cache.history_size(), 4u);
  EXPECT_EQ(cache.history_capacity(), 4u);
}

TEST(LrukCacheTest, ZeroHistoryWorks) {
  LrukCache cache(2, 0);
  Access(cache, 1);
  Access(cache, 2);
  Access(cache, 3);
  EXPECT_EQ(cache.history_size(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LrukCacheTest, K1DegeneratesToLru) {
  LrukCache cache(2, 0, /*k=*/1);
  EXPECT_EQ(cache.name(), "lru-1");
  Access(cache, 1);
  Access(cache, 2);
  Access(cache, 1);  // refresh 1
  Access(cache, 3);  // evicts 2 (least recent single reference)
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LrukCacheTest, InvalidateMovesToHistory) {
  LrukCache cache(2, 4);
  Access(cache, 1);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.history_size(), 1u);
}

TEST(LrukCacheTest, ZeroCapacityNeverCaches) {
  LrukCache cache(0, 4);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LrukCacheTest, ResizeShrinkEvicts) {
  LrukCache cache(4, 8);
  for (Key k = 1; k <= 4; ++k) {
    Access(cache, k);
    Access(cache, k);
  }
  ASSERT_TRUE(cache.Resize(2).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(LrukCacheTest, CapacityNeverExceededUnderRandomOps) {
  LrukCache cache(8, 32);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(100);
    if (rng.NextBelow(10) == 0) {
      cache.Invalidate(k);
    } else {
      Access(cache, k);
    }
    ASSERT_LE(cache.size(), 8u);
    ASSERT_LE(cache.history_size(), 32u);
  }
}

TEST(LrukCacheTest, HotKeysSurviveScanNoise) {
  // LRU-2's selling point vs LRU: a sequential scan of cold keys cannot
  // displace keys with two recent references.
  LrukCache cache(4, 64);
  for (int round = 0; round < 50; ++round) {
    for (Key hot = 0; hot < 3; ++hot) Access(cache, hot);
    Access(cache, 1000 + static_cast<Key>(round));  // one-time scan key
  }
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

}  // namespace
}  // namespace cot::cache
