#include "cache/perfect_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cache {
namespace {

TEST(PerfectCacheTest, HitsOnlyHotSet) {
  PerfectCache cache({1, 2, 3});
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_FALSE(cache.Get(4).has_value());
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PerfectCacheTest, PutAndInvalidateAreNoops) {
  PerfectCache cache({5});
  cache.Put(7, 70);
  EXPECT_FALSE(cache.Contains(7));
  cache.Invalidate(5);
  EXPECT_TRUE(cache.Contains(5));  // the oracle's hot set is immutable
}

TEST(PerfectCacheTest, SizeEqualsHotSetSize) {
  PerfectCache cache({1, 2, 3, 3});  // duplicate collapses
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
}

TEST(PerfectCacheTest, ResizeUnimplemented) {
  PerfectCache cache({1});
  EXPECT_EQ(cache.Resize(5).code(), StatusCode::kUnimplemented);
}

TEST(PerfectCacheTest, EmptyHotSetAlwaysMisses) {
  PerfectCache cache({});
  EXPECT_FALSE(cache.Get(0).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PerfectCacheTest, HitRateMatchesTheoreticalTopCMass) {
  // The TPC series of Figure 4: a perfect cache of the top C keys hits with
  // probability equal to the Zipfian CDF at C.
  constexpr uint64_t kN = 10000;
  constexpr uint64_t kC = 64;
  workload::ZipfianGenerator gen(kN, 0.99);
  std::vector<Key> hot;
  for (Key k = 0; k < kC; ++k) hot.push_back(k);  // ranks = ids here
  PerfectCache cache(hot);
  Rng rng(21);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) cache.Get(gen.Next(rng));
  // YCSB's Gray-method sampling is itself an approximation of the Zipfian
  // CDF for moderate n, so allow a few points of slack.
  EXPECT_NEAR(cache.stats().HitRate(), gen.TopCMass(kC), 0.03);
}

}  // namespace
}  // namespace cot::cache
