#include "cache/lfu_cache.h"

#include <gtest/gtest.h>

namespace cot::cache {
namespace {

TEST(LfuCacheTest, PutThenGet) {
  LfuCache cache(2);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
}

TEST(LfuCacheTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  cache.Put(3, 33);  // 2 has fewer hits -> evicted
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LfuCacheTest, FrequencyCountsAccesses) {
  LfuCache cache(4);
  cache.Put(7, 70);
  EXPECT_EQ(cache.FrequencyOf(7), 1u);
  cache.Get(7);
  cache.Get(7);
  EXPECT_EQ(cache.FrequencyOf(7), 3u);
  EXPECT_EQ(cache.FrequencyOf(99), 0u);
}

TEST(LfuCacheTest, TieBreaksByInsertionOrder) {
  LfuCache cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);  // both frequency 1
  cache.Put(3, 33);  // evicts the older: key 1
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LfuCacheTest, NoHistoryAcrossEviction) {
  // LFU's Section-3 weakness: counts are forgotten on eviction.
  LfuCache cache(1);
  cache.Put(1, 11);
  for (int i = 0; i < 100; ++i) cache.Get(1);
  // Capacity 1: Put(2) evicts key 1 — the only, hence minimum, entry —
  // despite its 100 accumulated hits.
  cache.Put(2, 22);
  EXPECT_FALSE(cache.Contains(1));
  cache.Put(1, 11);
  EXPECT_EQ(cache.FrequencyOf(1), 1u);  // history was lost
}

TEST(LfuCacheTest, FrequentOldKeysBlockNewKeys) {
  // The other Section-3 weakness: (A,A,B,B, C,D,E, C,D,E ...) — once A and
  // B accumulate hits, the C/D/E working set cannot stay resident.
  LfuCache cache(3);
  for (Key k : {0, 0, 0, 1, 1, 1}) {
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  uint64_t misses_before = cache.stats().misses;
  for (int round = 0; round < 5; ++round) {
    for (Key k : {2, 3, 4}) {
      if (!cache.Get(k).has_value()) cache.Put(k, k);
    }
  }
  // C/D/E keep missing: every access in the loop was a miss except possibly
  // the very first replacement winner.
  uint64_t loop_misses = cache.stats().misses - misses_before;
  EXPECT_GE(loop_misses, 13u);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LfuCacheTest, InvalidateRemovesAndForgetsCount) {
  LfuCache cache(2);
  cache.Put(1, 11);
  cache.Get(1);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  cache.Put(1, 11);
  EXPECT_EQ(cache.FrequencyOf(1), 1u);
}

TEST(LfuCacheTest, ZeroCapacityNeverCaches) {
  LfuCache cache(0);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LfuCacheTest, ResizeShrinkEvictsColdest) {
  LfuCache cache(3);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Put(3, 33);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  ASSERT_TRUE(cache.Resize(1).ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LfuCacheTest, OverwriteKeepsFrequency) {
  LfuCache cache(2);
  cache.Put(1, 11);
  cache.Get(1);
  cache.Put(1, 99);
  EXPECT_EQ(cache.FrequencyOf(1), 2u);
  EXPECT_EQ(*cache.Get(1), 99u);
}

}  // namespace
}  // namespace cot::cache
