#include "cache/lru_cache.h"

#include <gtest/gtest.h>

namespace cot::cache {
namespace {

TEST(LruCacheTest, MissOnEmpty) {
  LruCache cache(2);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache cache(2);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Get(1);      // 1 is now MRU
  cache.Put(3, 33);  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Put(1, 111);  // overwrite refreshes recency and value
  cache.Put(3, 33);   // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(*cache.Get(1), 111u);
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruCacheTest, InvalidateRemoves) {
  LruCache cache(2);
  cache.Put(1, 11);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.Invalidate(99);  // absent: no-op
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(LruCacheTest, ZeroCapacityNeverCaches) {
  LruCache cache(0);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(LruCacheTest, CyclicScanIsWorstCase) {
  // The paper's Section 3 example: (A,B,C,D, A,B,C,E, A,B,C,F ...) always
  // misses an LRU cache of size 3.
  LruCache cache(3);
  const Key pattern[] = {0, 1, 2, 3, 0, 1, 2, 4, 0, 1, 2, 5};
  for (Key k : pattern) {
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 12u);
}

TEST(LruCacheTest, ResizeShrinkEvictsLru) {
  LruCache cache(4);
  for (Key k = 1; k <= 4; ++k) cache.Put(k, k);
  cache.Get(1);
  ASSERT_TRUE(cache.Resize(2).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(1));  // most recently used survives
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(LruCacheTest, ResizeGrowKeepsContent) {
  LruCache cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  ASSERT_TRUE(cache.Resize(4).ok());
  cache.Put(3, 33);
  cache.Put(4, 44);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LruCacheTest, NameAndStatsReset) {
  LruCache cache(1);
  EXPECT_EQ(cache.name(), "lru");
  cache.Get(5);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().misses, 0u);
}

}  // namespace
}  // namespace cot::cache
