#include "cache/synchronized_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"
#include "core/cot_cache.h"
#include "util/random.h"

namespace cot::cache {
namespace {

TEST(SynchronizedCacheTest, DelegatesSemantics) {
  SynchronizedCache cache(std::make_unique<LruCache>(2));
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, 11);
  EXPECT_EQ(*cache.Get(1), 11u);
  EXPECT_TRUE(cache.Contains(1));
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_EQ(cache.name(), "lru+mutex");
  EXPECT_TRUE(cache.Resize(4).ok());
  EXPECT_EQ(cache.capacity(), 4u);
}

TEST(SynchronizedCacheTest, StatsMirrorInner) {
  SynchronizedCache cache(std::make_unique<LruCache>(2));
  cache.Get(1);
  cache.Put(1, 1);
  cache.Get(1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SynchronizedCacheTest, InnerExposesWrappedPolicy) {
  SynchronizedCache cache(std::make_unique<core::CotCache>(4, 16));
  auto* cot = dynamic_cast<core::CotCache*>(cache.inner());
  ASSERT_NE(cot, nullptr);
  EXPECT_EQ(cot->tracker_capacity(), 16u);
}

TEST(SynchronizedCacheTest, ConcurrentMixedOpsStayConsistent) {
  SynchronizedCache cache(std::make_unique<core::CotCache>(32, 128));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key k = rng.NextBelow(500);
        switch (rng.NextBelow(10)) {
          case 0:
            cache.Invalidate(k);
            break;
          default:
            if (!cache.Get(k).has_value()) cache.Put(k, k);
            served.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 32u);
  // The wrapped CoT cache's own invariants survived concurrent use.
  auto* cot = dynamic_cast<core::CotCache*>(cache.inner());
  EXPECT_TRUE(cot->CheckInvariants());
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(cache.stats().lookups(), served.load());
}

TEST(SynchronizedCacheTest, ConcurrentResizeKeepsCapacityBounds) {
  SynchronizedCache cache(std::make_unique<LruCache>(64));
  constexpr int kWorkers = 3;
  constexpr int kOpsPerThread = 15000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 7);
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key k = rng.NextBelow(400);
        if (!cache.Get(k).has_value()) cache.Put(k, k);
      }
    });
  }
  // A resizer thread shrinks and grows while workers hammer the cache —
  // the elastic-resizing pattern the wrapper exists to make safe.
  threads.emplace_back([&] {
    Rng rng(1234);
    while (!stop.load(std::memory_order_acquire)) {
      size_t capacity = 8 + rng.NextBelow(120);
      ASSERT_TRUE(cache.Resize(capacity).ok());
      EXPECT_LE(cache.size(), capacity);
    }
  });
  for (int t = 0; t < kWorkers; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.stats().lookups(),
            static_cast<uint64_t>(kWorkers) * kOpsPerThread);
}

}  // namespace
}  // namespace cot::cache
