#include "cache/mq_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cot::cache {
namespace {

void Access(MqCache& cache, Key k) {
  if (!cache.Get(k).has_value()) cache.Put(k, k * 10);
}

TEST(MqCacheTest, PutThenGet) {
  MqCache cache(8);
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(cache.name(), "mq");
}

TEST(MqCacheTest, FrequencyDrivesQueueIndex) {
  MqCache cache(8);
  cache.Put(1, 11);
  EXPECT_EQ(cache.QueueOf(1), 0);  // frequency 1
  cache.Get(1);                    // frequency 2
  EXPECT_EQ(cache.QueueOf(1), 1);
  cache.Get(1);
  cache.Get(1);                    // frequency 4
  EXPECT_EQ(cache.QueueOf(1), 2);
  EXPECT_EQ(cache.FrequencyOf(1), 4u);
}

TEST(MqCacheTest, QueueIndexCapped) {
  MqCache cache(8, /*num_queues=*/3);
  cache.Put(1, 11);
  for (int i = 0; i < 100; ++i) cache.Get(1);
  EXPECT_EQ(cache.QueueOf(1), 2);  // m-1
}

TEST(MqCacheTest, EvictsFromLowestQueueFirst) {
  MqCache cache(2);
  Access(cache, 1);
  Access(cache, 1);
  Access(cache, 1);  // key 1 high queue
  Access(cache, 2);  // key 2 queue 0
  Access(cache, 3);  // evicts 2 (lowest queue LRU)
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(MqCacheTest, GhostHistoryRestoresFrequency) {
  MqCache cache(1, 8, /*ghost_capacity=*/8);
  Access(cache, 1);
  Access(cache, 1);
  Access(cache, 1);  // frequency 3
  Access(cache, 2);  // evicts 1 into ghosts
  EXPECT_EQ(cache.ghost_size(), 1u);
  Access(cache, 1);  // returns with frequency 3+1
  EXPECT_GE(cache.FrequencyOf(1), 4u);
}

TEST(MqCacheTest, LifetimeDemotesIdleEntries) {
  // life_time 4: an entry untouched for >4 accesses sinks one queue per
  // adjust pass.
  MqCache cache(4, 8, 16, /*life_time=*/4);
  Access(cache, 1);
  Access(cache, 1);
  Access(cache, 1);
  Access(cache, 1);  // queue 2
  ASSERT_EQ(cache.QueueOf(1), 2);
  for (Key k = 50; k < 70; ++k) Access(cache, k);  // time passes
  EXPECT_LT(cache.QueueOf(1), 2);  // demoted (or evicted: then -1 < 2)
}

TEST(MqCacheTest, GhostHistoryBounded) {
  MqCache cache(2, 8, /*ghost_capacity=*/4);
  for (Key k = 0; k < 100; ++k) Access(cache, k);
  EXPECT_LE(cache.ghost_size(), 4u);
}

TEST(MqCacheTest, CapacityNeverExceeded) {
  MqCache cache(8);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    Access(cache, rng.NextBelow(100));
    ASSERT_LE(cache.size(), 8u);
  }
}

TEST(MqCacheTest, InvalidateMovesToGhosts) {
  MqCache cache(4);
  Access(cache, 1);
  Access(cache, 1);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.ghost_size(), 1u);
}

TEST(MqCacheTest, ZeroCapacityNeverCaches) {
  MqCache cache(0);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MqCacheTest, ResizeShrinkEvicts) {
  MqCache cache(8);
  for (Key k = 0; k < 8; ++k) Access(cache, k);
  ASSERT_TRUE(cache.Resize(2).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(MqCacheTest, HotKeysSurviveScan) {
  MqCache cache(8);
  for (int round = 0; round < 50; ++round) {
    for (Key hot = 0; hot < 3; ++hot) Access(cache, hot);
    Access(cache, 1000 + static_cast<Key>(round));
  }
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

}  // namespace
}  // namespace cot::cache
