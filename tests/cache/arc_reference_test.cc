// Differential test: ArcCache against a literal transcription of the ARC
// paper's pseudocode (Megiddo & Modha, FAST 2003, Figure 4), implemented
// with plain lists and O(n) scans. The production implementation must
// agree on every hit/miss, the adaptation target p, and the final
// resident set.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "cache/arc_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cache {
namespace {

// Literal ARC(c) reference. Lists store keys, MRU at front.
class ReferenceArc {
 public:
  explicit ReferenceArc(size_t c) : c_(c) {}

  bool Access(Key x) {  // REQUEST(x); returns hit/miss
    if (c_ == 0) return false;
    if (In(t1_, x)) {  // Case I
      Remove(t1_, x);
      t2_.push_front(x);
      return true;
    }
    if (In(t2_, x)) {  // Case I
      Remove(t2_, x);
      t2_.push_front(x);
      return true;
    }
    if (In(b1_, x)) {  // Case II
      double delta = b1_.size() >= b2_.size()
                         ? 1.0
                         : static_cast<double>(b2_.size()) / b1_.size();
      p_ = std::min(static_cast<double>(c_), p_ + delta);
      Replace(x);
      Remove(b1_, x);
      t2_.push_front(x);
      return false;
    }
    if (In(b2_, x)) {  // Case III
      double delta = b2_.size() >= b1_.size()
                         ? 1.0
                         : static_cast<double>(b1_.size()) / b2_.size();
      p_ = std::max(0.0, p_ - delta);
      Replace(x);
      Remove(b2_, x);
      t2_.push_front(x);
      return false;
    }
    // Case IV.
    if (t1_.size() + b1_.size() == c_) {
      if (t1_.size() < c_) {
        b1_.pop_back();
        Replace(x);
      } else {
        t1_.pop_back();
      }
    } else if (t1_.size() + b1_.size() < c_) {
      size_t total = t1_.size() + t2_.size() + b1_.size() + b2_.size();
      if (total >= c_) {
        if (total == 2 * c_) b2_.pop_back();
        Replace(x);
      }
    }
    t1_.push_front(x);
    return false;
  }

  bool Resident(Key x) const { return In(t1_, x) || In(t2_, x); }
  double p() const { return p_; }
  size_t t1() const { return t1_.size(); }
  size_t t2() const { return t2_.size(); }
  size_t b1() const { return b1_.size(); }
  size_t b2() const { return b2_.size(); }

 private:
  static bool In(const std::deque<Key>& list, Key x) {
    return std::find(list.begin(), list.end(), x) != list.end();
  }
  static void Remove(std::deque<Key>& list, Key x) {
    list.erase(std::find(list.begin(), list.end(), x));
  }

  void Replace(Key x) {  // REPLACE(x, p)
    if (!t1_.empty() &&
        (static_cast<double>(t1_.size()) > p_ ||
         (In(b2_, x) && static_cast<double>(t1_.size()) == p_))) {
      Key victim = t1_.back();
      t1_.pop_back();
      b1_.push_front(victim);
    } else {
      Key victim = t2_.back();
      t2_.pop_back();
      b2_.push_front(victim);
    }
  }

  size_t c_;
  double p_ = 0.0;
  std::deque<Key> t1_, t2_, b1_, b2_;
};

struct DiffCase {
  const char* label;
  size_t capacity;
  uint64_t key_space;
  double skew;  // 0 = uniform
  uint64_t seed;
};

class ArcDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ArcDifferentialTest, MatchesPaperPseudocodeExactly) {
  const DiffCase& param = GetParam();
  ArcCache impl(param.capacity);
  ReferenceArc model(param.capacity);
  Rng rng(param.seed);
  std::unique_ptr<workload::ZipfianGenerator> zipf;
  if (param.skew > 0.0) {
    zipf = std::make_unique<workload::ZipfianGenerator>(param.key_space,
                                                        param.skew);
  }
  for (int i = 0; i < 20000; ++i) {
    Key key = zipf ? zipf->Next(rng) : rng.NextBelow(param.key_space);
    bool impl_hit = impl.Get(key).has_value();
    if (!impl_hit) impl.Put(key, key);
    bool model_hit = model.Access(key);
    ASSERT_EQ(impl_hit, model_hit)
        << "divergence at access " << i << " key " << key;
    if (i % 500 == 0) {
      ASSERT_DOUBLE_EQ(impl.p(), model.p()) << "p diverged at " << i;
      auto sizes = impl.list_sizes();
      ASSERT_EQ(sizes.t1, model.t1()) << i;
      ASSERT_EQ(sizes.t2, model.t2()) << i;
      ASSERT_EQ(sizes.b1, model.b1()) << i;
      ASSERT_EQ(sizes.b2, model.b2()) << i;
    }
  }
  for (Key key = 0; key < param.key_space; ++key) {
    ASSERT_EQ(impl.Contains(key), model.Resident(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ArcDifferentialTest,
    ::testing::Values(DiffCase{"small_zipf", 4, 100, 1.0999, 1},
                      DiffCase{"zipf099", 16, 1000, 0.99, 2},
                      DiffCase{"uniform_small", 8, 64, 0.0, 3},
                      DiffCase{"uniform_large_space", 8, 10000, 0.0, 4},
                      DiffCase{"tiny", 1, 50, 1.2, 5},
                      DiffCase{"big_cache", 64, 500, 0.9, 6}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace cot::cache
