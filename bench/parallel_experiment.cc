// Microbenchmark (google-benchmark) for the parallel experiment engine:
// the Figure-5 cluster shape (8 shards, 20 CoT clients, Zipfian 0.99,
// 95/5 read/update) driven by 1/4/8/16 OS threads. Items/sec counts
// workload operations, so the thread sweep reads directly as end-to-end
// throughput scaling. On a single-core host the sweep degenerates to
// measuring the threading overhead itself, which is the other number
// worth knowing: the parallel path must not tax the serial case.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "cluster/experiment.h"

namespace {

using namespace cot;

void BM_ParallelExperiment(benchmark::State& state) {
  cluster::ExperimentConfig config;
  config.num_servers = 8;
  config.key_space = 100000;
  config.num_clients = 20;
  config.total_ops = 200000;
  config.num_threads = static_cast<uint32_t>(state.range(0));
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 0.99;
  phase.read_fraction = 0.95;
  config.phases = {phase};
  cluster::CacheFactory factory = [](uint32_t) {
    return bench::MakePolicy("cot", 512, bench::TrackerRatioForSkew(0.99));
  };
  for (auto _ : state) {
    auto result = cluster::RunExperiment(config, factory);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->total_backend_lookups);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(config.total_ops));
}

BENCHMARK(BM_ParallelExperiment)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
