// Reproduces paper Figure 3 ("The Need for Cache Resizing"): back-end
// load-imbalance and relative server load as the front-end cache size
// grows, for a heavily skewed workload (Zipfian s = 1.5).
//
// Paper setup: 8 memcached shards, 20 clients, 1M keys, 10M lookups, CoT
// with a 4:1 tracker-to-cache ratio, cache swept 0 -> 2048 lines.
// Expected shape: no-cache imbalance ~16; ~64 lines reaches the I_t = 1.5
// ballpark (an order of magnitude drop); the first 64 lines cut ~90% of
// the relative server load while the next 64 cut only ~2% more.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"

namespace {

using namespace cot;

int Run(bool full) {
  bench::Banner("Figure 3", "load-imbalance & relative load vs cache size",
                full);

  cluster::ExperimentConfig config;
  config.num_servers = 8;
  config.num_clients = 20;
  config.key_space = full ? 1000000 : 100000;
  config.total_ops = full ? 10000000 : 2000000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 1.5;
  phase.read_fraction = 0.998;
  config.phases = {phase};

  std::vector<size_t> cache_sizes = {0, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  if (full) {
    cache_sizes.push_back(1024);
    cache_sizes.push_back(2048);
  }

  constexpr size_t kTrackerRatio = 4;  // paper: 4:1 for this experiment
  constexpr double kTargetImbalance = 1.5;

  double baseline_load = 0.0;
  double prev_relative = 1.0;
  std::printf("%12s %14s %18s %16s\n", "cache-lines", "imbalance",
              "relative-load(%)", "delta-load(pp)");
  for (size_t lines : cache_sizes) {
    auto result = cluster::RunExperiment(config, [&](uint32_t) {
      return bench::MakePolicy(lines == 0 ? "none" : "cot", lines,
                               kTrackerRatio);
    });
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double total = static_cast<double>(result->total_backend_lookups);
    if (lines == 0) baseline_load = total;
    double relative = total / baseline_load;
    std::printf("%12zu %14.2f %17.1f%% %15.1f\n", lines, result->imbalance,
                relative * 100.0, (prev_relative - relative) * 100.0);
    prev_relative = relative;
    if (lines == 0) {
      std::printf("             (no front-end cache: paper reports ~16.26 "
                  "at full scale)\n");
    }
    if (result->imbalance <= kTargetImbalance) {
      std::printf("             ^ target I_t = %.1f reached\n",
                  kTargetImbalance);
    }
  }
  std::printf("\nShape check: imbalance collapses by ~an order of magnitude "
              "within the first ~64 lines;\nrelative-load gains decay "
              "geometrically with each doubling.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
