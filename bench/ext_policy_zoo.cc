// Extension experiment: the full replacement-policy zoo. Beyond the
// paper's Figure-4 line-up (LRU, LFU, ARC, LRU-2, CoT) this library also
// implements 2Q and MQ — the other tracking-beyond-the-cache policies the
// paper cites in Section 4 — so the comparison the paper quotes from the
// ARC paper ("ARC ~ tuned 2Q/LRU-2/MQ") can be checked directly against
// CoT on the paper's own workloads.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "cache/mq_cache.h"
#include "cache/two_q_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

double MeasureHitRate(cache::Cache* cache, uint64_t keys, double skew,
                      uint64_t ops) {
  workload::ZipfianGenerator gen(keys, skew);
  Rng rng(42);
  uint64_t warmup = ops / 2;
  for (uint64_t i = 0; i < warmup; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  cache->ResetStats();
  for (uint64_t i = warmup; i < ops; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  return cache->stats().HitRate();
}

int Run(bool full) {
  bench::Banner("Extension", "policy zoo: + 2Q and MQ vs the Figure-4 "
                             "line-up", full);
  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t ops = full ? 10000000 : 1000000;
  std::vector<size_t> sizes = {8, 32, 128, 512};

  for (double skew : {0.99, 1.20}) {
    size_t ratio = bench::TrackerRatioForSkew(skew);
    std::printf("\n--- Zipfian %.2f ---\n", skew);
    std::printf("%8s", "lines");
    for (const char* name :
         {"lru", "lfu", "arc", "2q", "mq", "lru-2", "cot", "tpc"}) {
      std::printf(" %8s", name);
    }
    std::printf("\n");
    workload::ZipfianGenerator tpc(keys, skew);
    for (size_t lines : sizes) {
      std::printf("%8zu", lines);
      for (const std::string name : {"lru", "lfu", "arc"}) {
        auto cache = bench::MakePolicy(name, lines, ratio);
        std::printf(" %7.1f%%",
                    MeasureHitRate(cache.get(), keys, skew, ops) * 100.0);
      }
      {
        cache::TwoQCache twoq(lines);
        std::printf(" %7.1f%%",
                    MeasureHitRate(&twoq, keys, skew, ops) * 100.0);
      }
      {
        cache::MqCache mq(lines);
        std::printf(" %7.1f%%",
                    MeasureHitRate(&mq, keys, skew, ops) * 100.0);
      }
      for (const std::string name : {"lru-2", "cot"}) {
        auto cache = bench::MakePolicy(name, lines, ratio);
        std::printf(" %7.1f%%",
                    MeasureHitRate(cache.get(), keys, skew, ops) * 100.0);
      }
      std::printf(" %7.1f%%\n", tpc.TopCMass(lines) * 100.0);
    }
  }
  std::printf("\nShape check: 2Q and MQ land in the ARC/LRU-2 band "
              "(consistent with the ARC paper's findings);\nCoT stays on "
              "top and tracks TPC.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
