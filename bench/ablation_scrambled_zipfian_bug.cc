// Reproduces the paper's YCSB bug report (Section 1, contribution 5):
// YCSB's ScrambledZipfian generator produces workloads that are
// significantly less skewed than the Zipfian distribution it claims,
// which is why the paper switched to the plain ZipfianGenerator.
//
// We measure the hottest-key mass and the top-64 mass of (a) the true
// Zipfian, (b) YCSB's buggy scrambled variant, and (c) this library's
// corrected scramble (bijective Feistel permutation), against the
// analytic CDF.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "util/random.h"
#include "workload/scrambled_zipfian_generator.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

struct Masses {
  double top1;
  double top64;
};

Masses Measure(workload::KeyGenerator& gen, uint64_t samples) {
  Rng rng(7);
  std::map<workload::Key, uint64_t> counts;
  for (uint64_t i = 0; i < samples; ++i) ++counts[gen.Next(rng)];
  std::vector<uint64_t> sorted;
  sorted.reserve(counts.size());
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  Masses m{0.0, 0.0};
  if (!sorted.empty()) {
    m.top1 = static_cast<double>(sorted[0]) / static_cast<double>(samples);
  }
  uint64_t top64 = 0;
  for (size_t i = 0; i < 64 && i < sorted.size(); ++i) top64 += sorted[i];
  m.top64 = static_cast<double>(top64) / static_cast<double>(samples);
  return m;
}

int Run(bool full) {
  bench::Banner("Ablation A", "YCSB ScrambledZipfian skew-loss bug", full);

  const uint64_t keys = full ? 1000000 : 10000;
  const uint64_t samples = full ? 10000000 : 500000;

  workload::ZipfianGenerator truth(keys, 0.99);
  std::printf("key space %llu, %llu samples, requested skew 0.99\n\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(samples));
  std::printf("analytic Zipfian(0.99): top-1 mass %.2f%%, top-64 mass "
              "%.2f%%\n\n",
              truth.ProbabilityOfRank(0) * 100.0,
              truth.TopCMass(64) * 100.0);

  std::printf("%-34s %10s %10s\n", "generator", "top-1", "top-64");
  {
    workload::ZipfianGenerator gen(keys, 0.99);
    Masses m = Measure(gen, samples);
    std::printf("%-34s %9.2f%% %9.2f%%\n", "zipfian (paper's choice)",
                m.top1 * 100.0, m.top64 * 100.0);
  }
  {
    workload::ScrambledZipfianGenerator gen(keys, 0.99);
    Masses m = Measure(gen, samples);
    std::printf("%-34s %9.2f%% %9.2f%%   <-- the bug\n",
                "scrambled_zipfian (YCSB-faithful)", m.top1 * 100.0,
                m.top64 * 100.0);
  }
  {
    auto inner = std::make_unique<workload::ZipfianGenerator>(keys, 0.99);
    workload::PermutedGenerator gen(std::move(inner), /*seed=*/1234);
    Masses m = Measure(gen, samples);
    std::printf("%-34s %9.2f%% %9.2f%%   <-- our fix\n",
                "permuted_zipfian (Feistel)", m.top1 * 100.0,
                m.top64 * 100.0);
  }
  std::printf("\nShape check: the YCSB scrambled generator's hot-key mass "
              "collapses toward 1/zeta(10^10, 0.99) = %.2f%%\nregardless "
              "of the configured skew, while the Feistel scramble matches "
              "the analytic CDF exactly.\n",
              100.0 / workload::ScrambledZipfianGenerator::kZetan);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
