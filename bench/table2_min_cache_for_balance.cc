// Reproduces paper Table 2: the minimum number of front-end cache-lines
// each replacement policy needs to bring the back-end load-imbalance down
// to the target I_t = 1.1, per workload skew.
//
// Paper numbers (1M keys, 8 shards, 20 clients):
//   dist       no-cache   LRU   LFU   ARC   LRU-2  CoT
//   Zipf 0.90      1.35    64    16    16       8    8
//   Zipf 0.99      1.73   128    16    16      16    8
//   Zipf 1.20      4.18  2048  2048  1024    1024  512
// Expected shape: CoT needs the fewest lines everywhere (50-93.75% fewer),
// LRU-2 second; absolute counts shift with the scaled key space.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"

namespace {

using namespace cot;

constexpr double kTarget = 1.1;

cluster::ExperimentConfig BaseConfig(bool full, double skew) {
  cluster::ExperimentConfig config;
  config.num_servers = 8;
  config.num_clients = 20;
  config.key_space = full ? 1000000 : 100000;
  config.total_ops = full ? 10000000 : 2000000;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = skew;
  phase.read_fraction = 0.998;
  config.phases = {phase};
  return config;
}

double ImbalanceWith(const cluster::ExperimentConfig& config,
                     const std::string& policy, size_t lines, size_t ratio) {
  auto result = cluster::RunExperiment(config, [&](uint32_t) {
    return bench::MakePolicy(policy, lines, ratio);
  });
  if (!result.ok()) return -1.0;
  return result->imbalance;
}

// Smallest power-of-two line count in [1, max_lines] that achieves the
// target, or 0 when none does.
size_t MinLinesFor(const cluster::ExperimentConfig& config,
                   const std::string& policy, size_t ratio,
                   size_t max_lines) {
  for (size_t lines = 1; lines <= max_lines; lines *= 2) {
    double imbalance = ImbalanceWith(config, policy, lines, ratio);
    if (imbalance >= 0.0 && imbalance <= kTarget) return lines;
  }
  return 0;
}

int Run(bool full) {
  bench::Banner("Table 2", "min cache-lines per policy to reach I_t = 1.1",
                full);
  std::printf("%10s %10s", "dist", "no-cache");
  for (const auto& name : bench::PolicyNames()) {
    std::printf(" %7s", name.c_str());
  }
  std::printf("  (0 = not reached within sweep)\n");

  size_t max_lines = full ? 4096 : 2048;
  for (double skew : {0.90, 0.99, 1.20}) {
    cluster::ExperimentConfig config = BaseConfig(full, skew);
    size_t ratio = bench::TrackerRatioForSkew(skew);
    double no_cache = ImbalanceWith(config, "none", 0, ratio);
    std::printf("%9.2f %10.2f", skew, no_cache);
    std::fflush(stdout);
    size_t cot_lines = 0, worst_lines = 0;
    for (const auto& name : bench::PolicyNames()) {
      size_t lines = MinLinesFor(config, name, ratio, max_lines);
      std::printf(" %7zu", lines);
      std::fflush(stdout);
      if (name == "cot") cot_lines = lines;
      if (lines > worst_lines) worst_lines = lines;
    }
    if (cot_lines > 0 && worst_lines > 0) {
      std::printf("   CoT saves %.1f%% vs worst",
                  100.0 * (1.0 - static_cast<double>(cot_lines) /
                                     static_cast<double>(worst_lines)));
    }
    std::printf("\n");
  }
  std::printf("\nShape check: CoT needs the fewest lines in every row "
              "(paper: 50%%-93.75%% fewer), LRU needs the most,\nand the "
              "no-cache imbalance grows with skew (paper: 1.35 / 1.73 / "
              "4.18).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
