// Overload knee sweep: open-loop arrival-rate sweep over four variants —
// {CoT front-end cache, no front-end cache} x {defenses on, defenses off}
// — locating the saturation knee of the goodput-vs-offered-load curve.
//
// The two claims under measurement (ISSUE: overload robustness):
//  (a) CoT front-end caching moves the knee: the cached cluster sustains a
//      multiple of the cacheless cluster's offered load before goodput
//      degrades, because local hits never touch a shard queue.
//  (b) Bounded queues + deadline admission + retry budgets degrade
//      *gracefully* past the knee: defended goodput holds near its peak
//      (survivors stay inside the SLO, the excess is shed), while the
//      undefended configuration's queueing delay grows without bound and
//      goodput collapses to the trickle that arrived before the backlog
//      formed.
//
// Writes BENCH_overload.json (repo root committed copy) with the full
// sweep and a machine-checkable acceptance block.
//
// Usage: overload_knee [--full] [--out BENCH_overload.json]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/open_loop_sim.h"
#include "workload/binary_trace.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

struct Point {
  std::string variant;
  double rate = 0.0;
  sim::OpenLoopResult result;
};

struct Variant {
  std::string name;
  std::string policy;  // "cot" or "none"
  bool defended = false;
};

sim::OpenLoopConfig MakeConfig(const Variant& v, double rate) {
  sim::OpenLoopConfig config;
  config.num_servers = 4;
  // Few, busy front-ends: each logical client must replay enough ops to
  // warm its cache past the compulsory-miss regime, or the knee shift
  // measures trace length instead of caching.
  config.logical_clients = 64;
  config.num_threads = 1;  // committed JSON must be byte-stable
  config.arrival_rate_per_sec = rate;
  config.seed = 42;
  config.deadline_us = 5000;
  if (v.defended) {
    config.overload.max_queue_depth = 64;
    config.overload.deadline_us = 2000;
    config.overload.pressure_fraction = 0.75;
    config.retry_budget_ratio = 0.1;
    config.retry_budget_burst = 16.0;
  }
  return config;
}

cluster::CacheFactory FactoryFor(const Variant& v) {
  if (v.policy == "none") {
    return [](uint32_t) -> std::unique_ptr<cache::Cache> { return nullptr; };
  }
  return [](uint32_t) { return bench::MakePolicy("cot", 1024, 8); };
}

std::string TracePath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/cot_overload_knee_trace.bin";
}

void AppendPointJson(std::string* out, const Point& p) {
  char buf[1024];
  const sim::OpenLoopResult& r = p.result;
  std::snprintf(
      buf, sizeof(buf),
      "  {\"variant\": \"%s\", \"arrival_rate_per_sec\": %.0f, "
      "\"offered\": %llu, \"completed\": %llu, \"shed\": %llu, "
      "\"failed\": %llu, \"goodput\": %llu, "
      "\"goodput_rate_per_sec\": %.1f, \"local_hits\": %llu, "
      "\"degraded_failovers\": %llu, \"invalidation_bypass\": %llu, "
      "\"mean_latency_us\": %.1f}",
      p.variant.c_str(), p.rate, static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.goodput), r.goodput_rate_per_sec,
      static_cast<unsigned long long>(r.local_hits),
      static_cast<unsigned long long>(r.degraded_failovers),
      static_cast<unsigned long long>(r.invalidation_bypass),
      r.mean_latency_us);
  *out += buf;
}

int Run(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  std::string out_path = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    }
  }
  bench::Banner("Overload knee",
                "open-loop goodput vs offered load, defended vs undefended",
                full);

  const uint64_t keys = full ? 100000 : 20000;
  const uint64_t ops = full ? 2000000 : 200000;

  // One trace for every variant and rate: the comparison is pure policy,
  // never workload.
  const std::string trace_path = TracePath();
  {
    workload::PhaseSpec phase;
    phase.distribution = workload::Distribution::kZipfian;
    phase.skew = 0.99;
    phase.read_fraction = 0.998;  // the paper's Tao-style split
    phase.num_ops = ops;
    auto stream = workload::OpStream::Create(keys, {phase}, 42);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      return 1;
    }
    workload::BinaryTraceWriter writer;
    Status ws = writer.Open(trace_path);
    while (ws.ok() && !stream->Done()) ws = writer.Append(stream->Next());
    if (ws.ok()) ws = writer.Finish();
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
  }
  auto trace = workload::BinaryTraceView::Open(trace_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }

  // 4 shards x ~6.7k/s: the cacheless knee sits near 27k/s; the cached
  // knee lands wherever the front-end hit rate pushes it. The sweep
  // straddles both.
  const std::vector<double> rates = {5000,  10000, 15000, 20000,
                                     26000, 32000, 40000, 52000,
                                     66000, 90000, 130000};
  const std::vector<Variant> variants = {
      {"cot_defended", "cot", true},
      {"cot_no_defense", "cot", false},
      {"none_defended", "none", true},
      {"none_no_defense", "none", false},
  };

  std::vector<Point> points;
  std::printf("%-18s %10s %10s %10s %10s %12s\n", "variant", "rate/s",
              "goodput/s", "shed", "degraded", "mean-lat-us");
  for (const Variant& v : variants) {
    for (double rate : rates) {
      auto result =
          sim::RunOpenLoop(MakeConfig(v, rate), *trace, FactoryFor(v),
                           sim::LatencyModel{});
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (result->offered !=
          result->completed + result->shed + result->failed) {
        std::fprintf(stderr, "IDENTITY VIOLATION in %s @ %.0f\n",
                     v.name.c_str(), rate);
        return 3;
      }
      std::printf("%-18s %10.0f %10.1f %10llu %10llu %12.1f\n",
                  v.name.c_str(), rate, result->goodput_rate_per_sec,
                  static_cast<unsigned long long>(result->shed),
                  static_cast<unsigned long long>(
                      result->degraded_failovers),
                  result->mean_latency_us);
      points.push_back(Point{v.name, rate, std::move(result).value()});
    }
    std::printf("\n");
  }

  // Knee per variant: the highest swept rate whose goodput kept up with
  // >= 90% of offered load.
  auto knee_of = [&](const std::string& name) {
    double knee = 0.0;
    for (const Point& p : points) {
      if (p.variant != name) continue;
      const double kept = static_cast<double>(p.result.goodput) /
                          static_cast<double>(p.result.offered);
      if (kept >= 0.9 && p.rate > knee) knee = p.rate;
    }
    return knee;
  };
  auto peak_goodput = [&](const std::string& name) {
    double peak = 0.0;
    for (const Point& p : points) {
      if (p.variant == name && p.result.goodput_rate_per_sec > peak) {
        peak = p.result.goodput_rate_per_sec;
      }
    }
    return peak;
  };
  auto goodput_at_max_rate = [&](const std::string& name) {
    double best_rate = 0.0, goodput = 0.0;
    for (const Point& p : points) {
      if (p.variant == name && p.rate > best_rate) {
        best_rate = p.rate;
        goodput = p.result.goodput_rate_per_sec;
      }
    }
    return goodput;
  };

  const double knee_cot = knee_of("cot_defended");
  const double knee_none = knee_of("none_defended");
  // Graceful degradation vs collapse, measured on the cacheless pair so
  // local hits (which never queue and are goodput at ANY offered rate)
  // cannot mask the backend collapse.
  const double defended_peak = peak_goodput("none_defended");
  const double defended_past_knee = goodput_at_max_rate("none_defended");
  const double undefended_peak = peak_goodput("none_no_defense");
  const double undefended_past_knee = goodput_at_max_rate("none_no_defense");
  const double defended_retention =
      defended_peak > 0.0 ? defended_past_knee / defended_peak : 0.0;
  const double undefended_retention =
      undefended_peak > 0.0 ? undefended_past_knee / undefended_peak : 0.0;

  const bool knee_moved = knee_cot >= 2.0 * knee_none && knee_none > 0.0;
  const bool graceful = defended_retention >= 0.8;
  const bool collapse = undefended_retention <= 0.5;

  std::printf("knee (>=90%% of offered kept): cot_defended %.0f/s, "
              "none_defended %.0f/s  ->  caching moved it %.1fx  [%s]\n",
              knee_cot, knee_none, knee_none > 0 ? knee_cot / knee_none : 0.0,
              knee_moved ? "OK" : "FAIL");
  std::printf("past-knee retention (cacheless pair): defended %.0f%% of "
              "peak [%s], undefended %.0f%% [%s: collapse expected]\n",
              defended_retention * 100.0, graceful ? "OK" : "FAIL",
              undefended_retention * 100.0, collapse ? "OK" : "FAIL");

  std::string json = "{\n \"config\": {\"servers\": 4, \"keys\": ";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%llu, \"ops\": %llu, \"skew\": 0.99, "
                  "\"read_fraction\": 0.998, \"deadline_us\": 5000, "
                  "\"queue_depth\": 64, \"shed_wait_us\": 2000, "
                  "\"retry_budget\": 0.1, \"scale\": \"%s\"},\n",
                  static_cast<unsigned long long>(keys),
                  static_cast<unsigned long long>(ops),
                  full ? "full" : "default");
    json += buf;
  }
  json += " \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    AppendPointJson(&json, points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += " ],\n";
  {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        " \"acceptance\": {\"knee_cot_defended_per_sec\": %.0f, "
        "\"knee_none_defended_per_sec\": %.0f, "
        "\"knee_moved_by_caching\": %s, "
        "\"defended_past_knee_retention\": %.3f, "
        "\"undefended_past_knee_retention\": %.3f, "
        "\"graceful_degradation\": %s, \"undefended_collapse\": %s}\n}\n",
        knee_cot, knee_none, knee_moved ? "true" : "false",
        defended_retention, undefended_retention, graceful ? "true" : "false",
        collapse ? "true" : "false");
    json += buf;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::remove(trace_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return knee_moved && graceful && collapse ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
