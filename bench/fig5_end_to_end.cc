// Reproduces paper Figure 5: end-to-end running time of 1M lookups issued
// by 20 concurrent clients, for uniform / Zipf 0.99 / Zipf 1.20 workloads,
// without a front-end cache and with a 512-line cache under each policy.
//
// Paper numbers (RTT 244us, same-cluster deployment, 10 repetitions with
// 95% CIs): no-cache skewed runtimes are 8.9x (0.99) and 12.27x (1.2) the
// uniform runtime, driven by thrashing at the most-loaded shard; a CoT
// front-end cuts 70% / 88%; other policies cut 52-67% / 80-88%; on the
// uniform workload all caches are statistically free (no overhead).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "metrics/summary.h"
#include "sim/end_to_end_sim.h"

namespace {

using namespace cot;

struct Workload {
  const char* label;
  workload::Distribution dist;
  double skew;
};

int Run(bool full) {
  bench::Banner("Figure 5",
                "end-to-end runtime, 20 clients, 512-line front-ends", full);

  const uint64_t ops = full ? 1000000 : 200000;
  const int repetitions = full ? 10 : 3;
  const size_t lines = 512;
  sim::LatencyModel model;  // RTT 244us as in the paper

  const Workload workloads[] = {
      {"uniform", workload::Distribution::kUniform, 0.0},
      {"zipf-0.99", workload::Distribution::kZipfian, 0.99},
      {"zipf-1.20", workload::Distribution::kZipfian, 1.20},
  };

  std::printf("%10s %10s %14s %16s %14s\n", "workload", "policy",
              "runtime(ms)", "95%ci(+/-ms)", "vs no-cache");
  double uniform_nocache_ms = 0.0;
  for (const Workload& w : workloads) {
    cluster::ExperimentConfig config;
    config.num_servers = 8;
    config.num_clients = 20;
    config.key_space = full ? 1000000 : 100000;
    config.total_ops = ops;
    workload::PhaseSpec phase;
    phase.distribution = w.dist;
    phase.skew = w.skew;
    phase.read_fraction = 0.998;
    config.phases = {phase};

    size_t ratio = w.dist == workload::Distribution::kUniform
                       ? 4
                       : bench::TrackerRatioForSkew(w.skew);

    double nocache_ms = 0.0;
    std::vector<std::string> rows = {"none"};
    for (const auto& name : bench::PolicyNames()) rows.push_back(name);
    for (const auto& name : rows) {
      metrics::Summary runtime_ms;
      for (int rep = 0; rep < repetitions; ++rep) {
        config.seed = 42 + static_cast<uint64_t>(rep) * 1000;
        auto result = sim::RunEndToEnd(
            config,
            [&](uint32_t) { return bench::MakePolicy(name, lines, ratio); },
            model);
        if (!result.ok()) {
          std::fprintf(stderr, "sim failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        runtime_ms.Add(result->makespan_us / 1000.0);
      }
      double mean = runtime_ms.mean();
      if (name == "none") {
        nocache_ms = mean;
        if (w.dist == workload::Distribution::kUniform) {
          uniform_nocache_ms = mean;
        }
      }
      std::printf("%10s %10s %14.1f %16.1f %13.0f%%\n", w.label,
                  name.c_str(), mean, runtime_ms.ci95_half_width(),
                  100.0 * (1.0 - mean / nocache_ms));
    }
    if (w.dist != workload::Distribution::kUniform &&
        uniform_nocache_ms > 0.0) {
      std::printf("%10s  no-cache runtime is %.2fx the uniform no-cache "
                  "runtime (paper: %.2fx)\n",
                  w.label, nocache_ms / uniform_nocache_ms,
                  w.skew < 1.0 ? 8.9 : 12.27);
    }
  }
  std::printf("\nShape check: skewed no-cache runtimes are multiples of "
              "uniform; CoT gives the largest cut;\nuniform rows show no "
              "meaningful cache overhead.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
