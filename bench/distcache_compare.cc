// Head-to-head: DistCache-style two-layer caching versus plain consistent
// hashing, CoT front-end caches, and the server-side balancing families
// (Slicer-style slice reassignment, hot-key replication), under Zipfian
// skew. The two-layer scheme partitions a small upper cache tier by two
// independent hashes and routes each hot key to the less-loaded of its
// two candidate nodes (power-of-two-choices), which is what flattens the
// max-shard load that plain hashing concentrates on the hot key's owner.
//
// Reported per scheme: max/min shard-load imbalance (the paper's measure;
// under the two-layer topology this covers the *shard* tier only, so
// numbers stay comparable), Jain's fairness, back-end lookups, cache-tier
// lookups and share, update fan-out, and front-end hit rate. A churn leg
// re-runs plain vs. two-layer with mid-run shard add/remove.
//
// Writes BENCH_distcache.json (committed copy at the repo root) and
// self-gates: exits non-zero unless the two-layer max-shard imbalance is
// *strictly below* plain consistent hashing at every alpha >= 0.99 — the
// acceptance criterion of the two-layer PR.
//
// Usage: distcache_compare [--full] [--out BENCH_distcache.json]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/distcache_router.h"
#include "cluster/experiment.h"
#include "cluster/frontend_client.h"
#include "cluster/hot_key_replicator.h"
#include "cluster/slice_map.h"
#include "metrics/imbalance.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

constexpr uint32_t kShards = 8;
constexpr uint32_t kClients = 10;
constexpr uint32_t kCacheNodes = 4;
constexpr size_t kHotKeys = 128;
constexpr uint64_t kEpochOps = 1024;
constexpr double kReadFraction = 0.95;
constexpr uint64_t kSeed = 42;

struct SchemeResult {
  double imbalance = 0.0;       // max/min over *shard* lookups
  double jain = 1.0;            // Jain's fairness over shard lookups
  uint64_t backend_lookups = 0; // lookups that reached the shard tier
  uint64_t tier_lookups = 0;    // lookups absorbed by the cache tier
  double tier_share = 0.0;      // tier / (tier + shard)
  double hit_rate = 0.0;        // front-end local hit rate
  uint64_t invalidations = 0;   // update fan-out (deliveries)
  uint64_t keys_migrated = 0;   // churn leg only
};

workload::PhaseSpec Phase(double alpha, uint64_t ops_per_client) {
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = alpha;
  phase.read_fraction = kReadFraction;
  phase.num_ops = ops_per_client;
  return phase;
}

SchemeResult FromEngine(const cluster::ExperimentResult& r) {
  SchemeResult out;
  out.imbalance = r.imbalance;
  out.jain = metrics::JainFairnessIndex(r.per_server_lookups);
  out.backend_lookups = r.total_backend_lookups;
  out.tier_lookups = metrics::TotalLoad(r.cache_node_lookups);
  uint64_t routed = out.tier_lookups + out.backend_lookups;
  out.tier_share =
      routed == 0 ? 0.0 : static_cast<double>(out.tier_lookups) / routed;
  out.hit_rate = r.local_hit_rate;
  out.invalidations = r.aggregate.invalidations;
  out.keys_migrated = r.keys_migrated;
  return out;
}

/// Schemes the experiment engine runs natively: "plain" (ring, cacheless),
/// "distcache" (two-layer topology, cacheless), "cot" (ring + front-end
/// caches). `churn` optionally adds the mid-run membership plan.
SchemeResult RunEngineScheme(const std::string& scheme, double alpha,
                             uint64_t key_space, uint64_t total_ops,
                             const cluster::ChurnSchedule* churn) {
  cluster::ExperimentConfig config;
  config.num_servers = kShards;
  config.key_space = key_space;
  config.num_clients = kClients;
  config.total_ops = total_ops;
  config.phases = {Phase(alpha, total_ops / kClients)};
  config.seed = kSeed;
  if (churn != nullptr) config.churn = *churn;
  if (scheme == "distcache") {
    config.topology = cluster::Topology::kDistCache;
    config.cache_nodes = kCacheNodes;
    config.distcache_hot_keys = kHotKeys;
    config.distcache_epoch_ops = kEpochOps;
  }
  cluster::CacheFactory factory = [&](uint32_t) {
    return scheme == "cot"
               ? bench::MakePolicy("cot", 512, bench::TrackerRatioForSkew(alpha))
               : nullptr;
  };
  auto result = cluster::RunExperiment(config, factory);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", scheme.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return FromEngine(*result);
}

/// Server-side balancers (SliceMap, HotKeyReplicator) are attached by the
/// driver, not the engine, so this leg drives the same workload (same
/// phase spec, same per-client seeds, same preload) through a manual
/// round-robin loop — the shape the engine's serial path uses.
SchemeResult RunServerSideScheme(const std::string& scheme, double alpha,
                                 uint64_t key_space, uint64_t total_ops) {
  cluster::CacheCluster cluster(kShards, key_space);
  for (uint64_t k = 0; k < key_space; ++k) {
    cluster.server(cluster.ring().ServerFor(k))
        .Set(k, cluster::StorageLayer::InitialValue(k));
  }
  cluster.ResetServerCounters();

  std::unique_ptr<cluster::SliceMap> slicer;
  std::unique_ptr<cluster::HotKeyReplicator> replicator;
  if (scheme == "slicer") {
    slicer = std::make_unique<cluster::SliceMap>(kShards, 4096);
  } else {
    replicator = std::make_unique<cluster::HotKeyReplicator>(
        kShards, /*hot_share=*/0.02, /*gamma=*/8, /*tracker_size=*/256);
  }

  std::vector<std::unique_ptr<cluster::FrontendClient>> clients;
  std::vector<workload::OpStream> streams;
  for (uint32_t i = 0; i < kClients; ++i) {
    clients.push_back(
        std::make_unique<cluster::FrontendClient>(&cluster, nullptr));
    if (slicer) clients.back()->SetRouter(slicer.get());
    if (replicator) clients.back()->SetRouter(replicator.get());
    auto stream = workload::OpStream::Create(
        key_space, {Phase(alpha, total_ops / kClients)}, kSeed + i);
    streams.push_back(std::move(stream).value());
  }

  const uint64_t epoch = total_ops / 20;  // 20 control-plane rounds
  uint64_t ops = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (uint32_t i = 0; i < kClients; ++i) {
      if (streams[i].Done()) continue;
      clients[i]->Apply(streams[i].Next());
      progressed = true;
      if (++ops % epoch == 0) {
        if (slicer) slicer->Rebalance(&cluster);
        if (replicator) replicator->EndEpoch(clients[i]->route_view());
      }
    }
  }

  SchemeResult out;
  std::vector<uint64_t> loads = cluster.PerServerLookups();
  out.imbalance = metrics::LoadImbalance(loads);
  out.jain = metrics::JainFairnessIndex(loads);
  out.backend_lookups = metrics::TotalLoad(loads);
  for (const auto& c : clients) out.invalidations += c->stats().invalidations;
  return out;
}

void AppendRow(std::string* out, const char* scheme, double alpha,
               const SchemeResult& r, bool churn_leg) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"scheme\": \"%s\", \"alpha\": %.2f, \"shard_imbalance\": %.3f, "
      "\"jain_fairness\": %.4f, \"backend_lookups\": %llu, "
      "\"cache_tier_lookups\": %llu, \"cache_tier_share\": %.3f, "
      "\"local_hit_rate\": %.3f, \"invalidations\": %llu%s%s}",
      scheme, alpha, r.imbalance, r.jain,
      static_cast<unsigned long long>(r.backend_lookups),
      static_cast<unsigned long long>(r.tier_lookups), r.tier_share,
      r.hit_rate, static_cast<unsigned long long>(r.invalidations),
      churn_leg ? ", \"keys_migrated\": " : "",
      churn_leg
          ? std::to_string(static_cast<unsigned long long>(r.keys_migrated))
                .c_str()
          : "");
  *out += buf;
}

int Run(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  std::string out_path = "BENCH_distcache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    }
  }
  bench::Banner("DistCache compare",
                "two-layer p2c cache tier vs plain hashing, CoT, and "
                "server-side balancers",
                full);

  const uint64_t key_space = full ? 1000000 : 100000;
  const uint64_t total_ops = full ? 5000000 : 1000000;
  const std::vector<double> alphas = {0.99, 1.2};
  const std::vector<std::string> engine_schemes = {"plain", "distcache",
                                                   "cot"};
  const std::vector<std::string> server_schemes = {"slicer", "replication"};

  std::string sweep_json;
  double plain_imbalance[2] = {0.0, 0.0};
  double distcache_imbalance[2] = {0.0, 0.0};

  std::printf("%-12s %6s %10s %8s %16s %11s %10s\n", "scheme", "alpha",
              "imbalance", "jain", "backend-lookups", "tier-share",
              "hit-rate");
  for (size_t a = 0; a < alphas.size(); ++a) {
    for (const std::string& scheme : engine_schemes) {
      SchemeResult r =
          RunEngineScheme(scheme, alphas[a], key_space, total_ops, nullptr);
      if (scheme == "plain") plain_imbalance[a] = r.imbalance;
      if (scheme == "distcache") distcache_imbalance[a] = r.imbalance;
      std::printf("%-12s %6.2f %10.3f %8.4f %16llu %10.1f%% %10.3f\n",
                  scheme.c_str(), alphas[a], r.imbalance, r.jain,
                  static_cast<unsigned long long>(r.backend_lookups),
                  r.tier_share * 100.0, r.hit_rate);
      if (!sweep_json.empty()) sweep_json += ",\n";
      AppendRow(&sweep_json, scheme.c_str(), alphas[a], r, false);
    }
    for (const std::string& scheme : server_schemes) {
      SchemeResult r =
          RunServerSideScheme(scheme, alphas[a], key_space, total_ops);
      std::printf("%-12s %6.2f %10.3f %8.4f %16llu %10.1f%% %10.3f\n",
                  scheme.c_str(), alphas[a], r.imbalance, r.jain,
                  static_cast<unsigned long long>(r.backend_lookups),
                  r.tier_share * 100.0, r.hit_rate);
      if (!sweep_json.empty()) sweep_json += ",\n";
      AppendRow(&sweep_json, scheme.c_str(), alphas[a], r, false);
    }
  }

  // Churn leg: the same comparison with mid-run membership changes —
  // grow by two shards a third of the way in, retire one shard at two
  // thirds. Ids are authored in plain shard-id space; under the two-layer
  // topology the engine re-bases them past the cache-node ids.
  const uint64_t per_client = total_ops / kClients;
  cluster::ChurnSchedule churn;
  churn.events.push_back(
      {per_client / 3, cluster::ChurnAction::kAddServer, 0});
  churn.events.push_back(
      {per_client / 3 + 1, cluster::ChurnAction::kAddServer, 0});
  churn.events.push_back(
      {2 * per_client / 3, cluster::ChurnAction::kRemoveServer, 2});

  std::string churn_json;
  std::printf("\nchurn leg (add 2 shards @1/3, remove shard 2 @2/3):\n");
  for (const char* scheme : {"plain", "distcache"}) {
    SchemeResult r = RunEngineScheme(scheme, 1.2, key_space, total_ops, &churn);
    std::printf("%-12s %6.2f %10.3f %8.4f %16llu %10.1f%% migrated=%llu\n",
                scheme, 1.2, r.imbalance, r.jain,
                static_cast<unsigned long long>(r.backend_lookups),
                r.tier_share * 100.0,
                static_cast<unsigned long long>(r.keys_migrated));
    if (!churn_json.empty()) churn_json += ",\n";
    AppendRow(&churn_json, scheme, 1.2, r, true);
  }

  // Acceptance gate: the two-layer tier must strictly beat plain
  // consistent hashing on max-shard imbalance at every alpha >= 0.99.
  bool gate = true;
  for (size_t a = 0; a < alphas.size(); ++a) {
    if (!(distcache_imbalance[a] < plain_imbalance[a])) gate = false;
  }

  std::string json = "{\n \"config\": {";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"shards\": %u, \"clients\": %u, \"cache_nodes\": %u, "
                "\"hot_keys\": %zu, \"epoch_ops\": %llu, \"keys\": %llu, "
                "\"ops\": %llu, \"read_fraction\": %.2f, \"scale\": \"%s\"},\n",
                kShards, kClients, kCacheNodes, kHotKeys,
                static_cast<unsigned long long>(kEpochOps),
                static_cast<unsigned long long>(key_space),
                static_cast<unsigned long long>(total_ops), kReadFraction,
                full ? "full" : "default");
  json += buf;
  json += " \"skew_sweep\": [\n" + sweep_json + "\n ],\n";
  json += " \"churn\": [\n" + churn_json + "\n ],\n";
  std::snprintf(buf, sizeof(buf),
                " \"acceptance\": {\"plain_imbalance_alpha_099\": %.3f, "
                "\"distcache_imbalance_alpha_099\": %.3f, "
                "\"plain_imbalance_alpha_120\": %.3f, "
                "\"distcache_imbalance_alpha_120\": %.3f, "
                "\"distcache_strictly_beats_plain\": %s}\n}\n",
                plain_imbalance[0], distcache_imbalance[0],
                plain_imbalance[1], distcache_imbalance[1],
                gate ? "true" : "false");
  json += buf;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!gate) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILED: two-layer imbalance is not strictly "
                 "below plain hashing at every alpha >= 0.99\n");
    return 1;
  }
  std::printf("acceptance: two-layer max-shard imbalance strictly below "
              "plain hashing at alpha 0.99 and 1.2\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
