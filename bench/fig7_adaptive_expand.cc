// Reproduces paper Figure 7: CoT's elastic resizer expanding tracker and
// cache from a tiny initial configuration (C=2, K=4) on a Zipfian 1.2
// workload until the target load-imbalance I_t = 1.1 is achieved.
//
// Paper setup: epoch 5000 accesses, warm-up 5 epochs, resize suppressed
// when I_c is within 2% of I_t. Expected shape: phase 1 first discovers
// the tracker-to-cache ratio by doubling the tracker at fixed cache size
// (with a shrink-back dip when a doubling brings no hit-rate gain), then
// phase 2 doubles both until I_c <= I_t; the paper lands at C=512, K=2048
// with alpha_t ~ 7.8 at full scale.

#include <cstdio>

#include <cstring>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "metrics/epoch_series.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

int Run(bool full, bool csv) {
  bench::Banner("Figure 7", "adaptive expansion to meet I_t = 1.1", full);

  const uint64_t key_space = full ? 1000000 : 100000;
  const uint64_t max_ops = full ? 40000000 : 8000000;

  cluster::CacheCluster cluster(8, key_space);
  auto client = std::make_unique<cluster::FrontendClient>(
      &cluster, std::make_unique<core::CotCache>(2, 4));
  core::ResizerConfig config;
  config.target_imbalance = 1.1;
  config.initial_epoch_size = 5000;  // paper's epoch
  config.warmup_epochs = full ? 5 : 2;
  if (!client->EnableElasticResizing(config).ok()) return 1;

  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 0.998;
  zipf.num_ops = 0;  // unbounded; we stop on convergence
  auto stream = workload::OpStream::Create(key_space, {zipf}, /*seed=*/42);
  if (!stream.ok()) return 1;

  core::ElasticResizer* resizer = client->resizer();
  uint64_t ops = 0;
  size_t steady_mark = 0;
  bool in_steady = false;
  while (ops < max_ops) {
    client->Apply(stream->Next());
    ++ops;
    if (resizer->phase() == core::ResizerPhase::kSteady) {
      if (!in_steady) {
        in_steady = true;
        steady_mark = resizer->history().size();
      }
      if (resizer->history().size() >= steady_mark + 5) break;  // settled
    } else {
      in_steady = false;
    }
  }

  metrics::EpochSeries series(
      {"cache", "tracker", "ic_raw", "ic_smooth", "alpha_c", "alpha_t"});
  for (const core::EpochReport& r : resizer->history()) {
    series.Append({static_cast<double>(r.cache_capacity),
                   static_cast<double>(r.tracker_capacity),
                   r.current_imbalance, r.smoothed_imbalance, r.alpha_c,
                   r.alpha_target});
  }
  std::printf("%s\n", csv ? series.ToCsv().c_str()
                          : series.ToTable(40).c_str());

  const core::EpochReport& last = resizer->history().back();
  std::printf("converged after %zu epochs / %llu accesses\n",
              resizer->history().size(),
              static_cast<unsigned long long>(ops));
  std::printf("final: cache=%zu tracker=%zu I_c(smoothed)=%.3f "
              "alpha_t=%.2f phase=%s\n",
              last.cache_capacity, last.tracker_capacity,
              last.smoothed_imbalance, last.alpha_target,
              std::string(ToString(resizer->phase())).c_str());
  std::printf("(paper, full scale: cache=512 tracker=2048 alpha_t~7.8)\n");
  std::printf("\nShape check: tracker doubles first at fixed cache (phase "
              "1, with a shrink-back dip), then cache and\ntracker double "
              "together until I_c <= I_t; I_c falls monotonically with "
              "each doubling.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;  // plot-ready output
  }
  return Run(cot::bench::FullScale(argc, argv), csv);
}
