// Gray-failure tail benchmark: closed-loop end-to-end timing of three
// variants over one workload — fault-free, a gray shard with no defense,
// and the same gray shard with the full defense (health scoring, adaptive
// deadlines, budgeted hedged reads, lameduck quarantine).
//
// The claim under measurement (ISSUE: gray-failure defense): one shard
// running 10x slow — alive, never crash-eligible, invisible to failure
// counters — drags the cluster p99 by an order of magnitude, and the
// health-driven defense pulls it back to within a small factor of the
// fault-free tail without fencing the shard.
//
// Acceptance (self-gating, exit 4 on failure):
//   defended_p99  <= 3x fault-free p99
//   undefended_p99 >= 8x fault-free p99
// Hedge accounting identity (exit 3 on violation):
//   hedges_sent == hedges_won + hedges_lost + hedges_suppressed
//
// Writes BENCH_tail.json (repo root committed copy).
//
// Usage: gray_tail [--full] [--out BENCH_tail.json]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "sim/end_to_end_sim.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

struct Variant {
  std::string name;
  bool gray = false;
  bool defended = false;
};

struct Point {
  std::string name;
  sim::EndToEndResult result;
};

cluster::ExperimentConfig MakeConfig(const Variant& v, uint64_t keys,
                                     uint64_t ops) {
  cluster::ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = keys;
  config.num_clients = 8;
  config.total_ops = ops;
  config.num_threads = 1;  // committed JSON must be byte-stable
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  // Moderate skew: enough locality to be realistic, low enough that the
  // fault-free tail is service time and not hot-shard queueing — the
  // measured ratio must isolate the gray shard, not Zipfian contention.
  phase.skew = 0.9;
  phase.read_fraction = 0.95;
  config.phases = {phase};
  if (v.gray) {
    // One shard 10x slow for most of every client's stream: sustained,
    // jittered, alive the whole time. Never crash-eligible — the point of
    // gray is that failure counters see nothing.
    cluster::FaultEvent e;
    e.server = 1;
    e.type = cluster::FaultType::kGray;
    e.start_op = ops / config.num_clients / 10;
    e.end_op = ops / config.num_clients;
    e.slow_factor = 10.0;
    e.jitter = 0.2;
    config.faults.events = {e};
  }
  if (v.defended) {
    config.failure_policy.health_enabled = true;
    config.failure_policy.hedging_enabled = true;
    config.failure_policy.retry_budget_ratio = 0.5;
    config.failure_policy.retry_budget_burst = 16.0;
  }
  return config;
}

void AppendVariantJson(std::string* out, const Point& p, bool last) {
  const sim::EndToEndResult& r = p.result;
  const cluster::FrontendStats& a = r.logical.aggregate;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"variant\": \"%s\", \"makespan_us\": %.0f, "
      "\"mean_latency_us\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"p999_us\": %.1f, \"max_backlog\": %.0f, "
      "\"failed_requests\": %llu, \"breaker_trips\": %llu, "
      "\"hedges_sent\": %llu, \"hedges_won\": %llu, "
      "\"hedges_lost\": %llu, \"hedges_suppressed\": %llu, "
      "\"lameduck_entries\": %llu, \"lameduck_exits\": %llu, "
      "\"lameduck_bypasses\": %llu, \"lameduck_probes\": %llu}%s\n",
      p.name.c_str(), r.makespan_us, r.mean_latency_us,
      r.latency_us.Median(), r.latency_us.P99(), r.latency_us.P999(),
      r.max_backlog, static_cast<unsigned long long>(a.failed_requests),
      static_cast<unsigned long long>(a.breaker_trips),
      static_cast<unsigned long long>(a.hedges_sent),
      static_cast<unsigned long long>(a.hedges_won),
      static_cast<unsigned long long>(a.hedges_lost),
      static_cast<unsigned long long>(a.hedges_suppressed),
      static_cast<unsigned long long>(a.lameduck_entries),
      static_cast<unsigned long long>(a.lameduck_exits),
      static_cast<unsigned long long>(a.lameduck_bypasses),
      static_cast<unsigned long long>(a.lameduck_probes), last ? "" : ",");
  *out += buf;
}

int Run(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  std::string out_path = "BENCH_tail.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    }
  }
  bench::Banner("Gray-failure tail",
                "p99 under a 10x-slow gray shard, defended vs undefended",
                full);

  const uint64_t keys = full ? 100000 : 20000;
  const uint64_t ops = full ? 2000000 : 240000;

  const std::vector<Variant> variants = {
      {"fault_free", false, false},
      {"gray_undefended", true, false},
      {"gray_defended", true, true},
  };

  // No front-end cache: every read prices a backend round-trip, so the
  // tail is the shard tail, undiluted by 2us local hits.
  cluster::CacheFactory factory = [](uint32_t) -> std::unique_ptr<cache::Cache> {
    return nullptr;
  };

  std::vector<Point> points;
  std::printf("%-17s %12s %10s %10s %10s %10s\n", "variant", "makespan-ms",
              "mean-us", "p50-us", "p99-us", "p999-us");
  for (const Variant& v : variants) {
    auto result = sim::RunEndToEnd(MakeConfig(v, keys, ops), factory,
                                   sim::LatencyModel{});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const cluster::FrontendStats& a = result->logical.aggregate;
    if (a.hedges_sent != a.hedges_won + a.hedges_lost + a.hedges_suppressed) {
      std::fprintf(stderr,
                   "IDENTITY VIOLATION in %s: sent=%llu won=%llu lost=%llu "
                   "suppressed=%llu\n",
                   v.name.c_str(),
                   static_cast<unsigned long long>(a.hedges_sent),
                   static_cast<unsigned long long>(a.hedges_won),
                   static_cast<unsigned long long>(a.hedges_lost),
                   static_cast<unsigned long long>(a.hedges_suppressed));
      return 3;
    }
    // Gray must stay gray: zero hard failures, zero breaker trips in
    // every variant, or the scenario is not measuring what it claims.
    if (a.failed_requests != 0 || a.breaker_trips != 0) {
      std::fprintf(stderr, "%s: gray shard tripped failure machinery\n",
                   v.name.c_str());
      return 3;
    }
    std::printf("%-17s %12.1f %10.1f %10.1f %10.1f %10.1f\n", v.name.c_str(),
                result->makespan_us / 1000.0, result->mean_latency_us,
                result->latency_us.Median(), result->latency_us.P99(),
                result->latency_us.P999());
    points.push_back(Point{v.name, std::move(result).value()});
  }

  const double p99_free = points[0].result.latency_us.P99();
  const double p99_undefended = points[1].result.latency_us.P99();
  const double p99_defended = points[2].result.latency_us.P99();
  const double undefended_ratio = p99_free > 0 ? p99_undefended / p99_free : 0;
  const double defended_ratio = p99_free > 0 ? p99_defended / p99_free : 0;
  const bool gray_hurts = undefended_ratio >= 8.0;
  const bool defense_holds = defended_ratio <= 3.0;

  std::printf("p99: fault-free %.0fus, undefended %.0fus (%.1fx) [%s], "
              "defended %.0fus (%.1fx) [%s]\n",
              p99_free, p99_undefended, undefended_ratio,
              gray_hurts ? "OK: >=8x" : "FAIL: expected >=8x", p99_defended,
              defended_ratio, defense_holds ? "OK: <=3x" : "FAIL: expected <=3x");

  std::string json = "{\n \"config\": {";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "\"servers\": 4, \"clients\": 8, \"keys\": %llu, "
                  "\"ops\": %llu, \"skew\": 0.9, \"read_fraction\": 0.95, "
                  "\"gray_shard\": 1, \"gray_factor\": 10.0, "
                  "\"gray_jitter\": 0.2, \"scale\": \"%s\"},\n",
                  static_cast<unsigned long long>(keys),
                  static_cast<unsigned long long>(ops),
                  full ? "full" : "default");
    json += buf;
  }
  json += " \"variants\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    AppendVariantJson(&json, points[i], i + 1 == points.size());
  }
  json += " ],\n";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  " \"acceptance\": {\"p99_fault_free_us\": %.1f, "
                  "\"p99_undefended_us\": %.1f, \"p99_defended_us\": %.1f, "
                  "\"undefended_ratio\": %.2f, \"defended_ratio\": %.2f, "
                  "\"gray_hurts_undefended\": %s, \"defense_holds\": %s}\n}\n",
                  p99_free, p99_undefended, p99_defended, undefended_ratio,
                  defended_ratio, gray_hurts ? "true" : "false",
                  defense_holds ? "true" : "false");
    json += buf;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return gray_hurts && defense_holds ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
