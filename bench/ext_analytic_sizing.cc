// Extension experiment: the paper's headline question — "what is the
// necessary front-end cache size that achieves load-balancing?" —
// answered three ways and compared:
//
//   analytic    workload::EstimateRequiredCacheLines (zero simulation;
//               documented lower bound)
//   simulated   the Table-2 style sweep: smallest power-of-two CoT cache
//               whose measured imbalance meets the target
//   elastic     what CoT's resizer actually converges to when it runs the
//               search online
//
// Shape expectation: analytic <= simulated ~ elastic, all within a couple
// of doublings — i.e. the analytic bound is a sound warm start for the
// resizer, and the resizer lands where the offline sweep says it should.

#include <cstdio>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/experiment.h"
#include "cluster/frontend_client.h"
#include "workload/op_stream.h"
#include "workload/zipf_estimate.h"

namespace {

using namespace cot;

constexpr double kTarget = 1.3;  // comfortably above the statistical floor

uint64_t SimulatedMinimum(double skew, uint64_t keys, uint64_t ops) {
  cluster::ExperimentConfig config;
  config.num_servers = 8;
  config.num_clients = 20;
  config.key_space = keys;
  config.total_ops = ops;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = skew;
  phase.read_fraction = 0.998;
  config.phases = {phase};
  size_t ratio = bench::TrackerRatioForSkew(skew);
  for (uint64_t lines = 1; lines <= keys; lines *= 2) {
    auto result = cluster::RunExperiment(config, [&](uint32_t) {
      return bench::MakePolicy("cot", lines, ratio);
    });
    if (result.ok() && result->imbalance <= kTarget) return lines;
  }
  return keys;
}

uint64_t ElasticConvergence(double skew, uint64_t keys, uint64_t max_ops) {
  cluster::CacheCluster cluster(8, keys);
  auto client = std::make_unique<cluster::FrontendClient>(
      &cluster, std::make_unique<core::CotCache>(2, 4));
  core::ResizerConfig config;
  config.target_imbalance = kTarget;
  config.warmup_epochs = 2;
  if (!client->EnableElasticResizing(config).ok()) return 0;
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = skew;
  phase.read_fraction = 0.998;
  phase.num_ops = 0;
  auto stream = workload::OpStream::Create(keys, {phase}, 42);
  if (!stream.ok()) return 0;
  uint64_t ops = 0;
  size_t steady_mark = 0;
  bool in_steady = false;
  while (ops < max_ops) {
    client->Apply(stream->Next());
    ++ops;
    if (client->resizer()->phase() == core::ResizerPhase::kSteady) {
      if (!in_steady) {
        in_steady = true;
        steady_mark = client->resizer()->history().size();
      }
      if (client->resizer()->history().size() >= steady_mark + 3) break;
    } else {
      in_steady = false;
    }
  }
  auto* cache = dynamic_cast<core::CotCache*>(client->local_cache());
  return cache->capacity();
}

int Run(bool full) {
  bench::Banner("Extension", "analytic vs simulated vs elastic cache "
                             "sizing (target I = 1.3)", full);
  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t sweep_ops = full ? 10000000 : 1000000;
  const uint64_t elastic_ops = full ? 40000000 : 8000000;

  std::printf("%8s %12s %12s %12s\n", "skew", "analytic", "simulated",
              "elastic");
  for (double skew : {0.99, 1.2, 1.5}) {
    auto analytic =
        workload::EstimateRequiredCacheLines(keys, skew, 8, kTarget);
    uint64_t simulated = SimulatedMinimum(skew, keys, sweep_ops);
    uint64_t elastic = ElasticConvergence(skew, keys, elastic_ops);
    std::printf("%8.2f %12llu %12llu %12llu\n", skew,
                static_cast<unsigned long long>(analytic.value_or(0)),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(elastic));
  }
  std::printf("\nShape check: analytic (a documented lower bound) <= "
              "simulated ~ elastic, each within a couple\nof doublings — "
              "the closed-form estimate is a sound warm start for CoT's "
              "online search.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
