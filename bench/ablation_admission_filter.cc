// Ablation C: how much of CoT's advantage comes from tracking *beyond*
// the cache size (the admission filter), the design choice DESIGN.md
// calls out as the core of the replacement policy.
//
// We fix the cache size and sweep the tracker-to-cache ratio from 1:1
// (tracker == cache: the filter sees nothing beyond the residents, so
// CoT degenerates to in-cache LFU ordering) up to 32:1, against plain
// LFU and LRU baselines.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

template <typename CacheT>
double MeasureHitRate(CacheT& cache, uint64_t keys, uint64_t ops,
                      double skew) {
  workload::ZipfianGenerator gen(keys, skew);
  Rng rng(42);
  uint64_t warmup = ops / 2;
  for (uint64_t i = 0; i < warmup; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  cache.ResetStats();
  for (uint64_t i = warmup; i < ops; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  return cache.stats().HitRate();
}

int Run(bool full) {
  bench::Banner("Ablation C", "admission filter: tracker ratio sweep vs "
                              "LRU/LFU", full);
  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t ops = full ? 10000000 : 1000000;
  const size_t lines = 64;
  const double skew = 0.99;

  std::printf("cache fixed at %zu lines, Zipf %.2f over %llu keys\n\n",
              lines, skew, static_cast<unsigned long long>(keys));
  std::printf("%-22s %10s\n", "configuration", "hit-rate");
  {
    auto lru = bench::MakePolicy("lru", lines, 1);
    std::printf("%-22s %9.2f%%\n", "lru",
                MeasureHitRate(*lru, keys, ops, skew) * 100.0);
  }
  {
    auto lfu = bench::MakePolicy("lfu", lines, 1);
    std::printf("%-22s %9.2f%%\n", "lfu",
                MeasureHitRate(*lfu, keys, ops, skew) * 100.0);
  }
  for (size_t ratio : {1, 2, 4, 8, 16, 32}) {
    // ratio 1 is clamped to 2 by the K >= 2C rule; construct explicitly to
    // show the degenerate point.
    core::CotCache cache(lines, ratio * lines);
    char label[32];
    std::snprintf(label, sizeof(label), "cot K=%zuC (K=%zu)", ratio,
                  cache.tracker_capacity());
    std::printf("%-22s %9.2f%%\n", label,
                MeasureHitRate(cache, keys, ops, skew) * 100.0);
  }
  std::printf("\nShape check: CoT's edge over LFU comes almost entirely "
              "from the tracked-but-not-cached keys;\ngains rise with the "
              "ratio and saturate around 16:1 for this skew.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
