// Reproduces paper Figure 4 (a/b/c): front-end cache hit rate vs cache
// size for LRU, LFU, ARC, LRU-2, CoT and the theoretical perfect cache
// (TPC), on Zipfian workloads with s = 0.90, 0.99, 1.20.
//
// Paper setup: 1M keys, 10M accesses, 20 clients each with its own cache;
// the hit rate is a property of each private cache, so we measure one
// cache per configuration. Tracker-to-cache ratios per the paper: 16:1 for
// s=0.90, 8:1 for s=0.99, 4:1 for s=1.20 (LRU-2 history sized equally).
// Expected shape: CoT ~ TPC at every size; CoT beats LRU/LFU with ~75%
// fewer lines and ARC with ~50% fewer; the gap narrows as skew rises.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

double MeasureHitRate(cache::Cache* cache, workload::ZipfianGenerator& gen,
                      uint64_t total_ops, uint64_t seed) {
  Rng rng(seed);
  uint64_t warmup = total_ops / 2;
  for (uint64_t i = 0; i < warmup; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  cache->ResetStats();
  for (uint64_t i = warmup; i < total_ops; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  return cache->stats().HitRate();
}

int Run(bool full) {
  bench::Banner("Figure 4", "hit rate vs cache size, 6 series x 3 skews",
                full);

  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t ops = full ? 10000000 : 1000000;
  std::vector<size_t> sizes = full
      ? std::vector<size_t>{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
      : std::vector<size_t>{2, 8, 32, 128, 512};

  for (double skew : {0.90, 0.99, 1.20}) {
    size_t ratio = bench::TrackerRatioForSkew(skew);
    std::printf("\n--- Zipfian %.2f (tracker/history ratio %zu:1) ---\n",
                skew, ratio);
    std::printf("%8s", "lines");
    for (const auto& name : bench::PolicyNames()) {
      std::printf(" %8s", name.c_str());
    }
    std::printf(" %8s\n", "tpc");
    workload::ZipfianGenerator tpc(keys, skew);
    for (size_t lines : sizes) {
      std::printf("%8zu", lines);
      for (const auto& name : bench::PolicyNames()) {
        auto cache = bench::MakePolicy(name, lines, ratio);
        workload::ZipfianGenerator gen(keys, skew);
        double rate = MeasureHitRate(cache.get(), gen, ops, /*seed=*/42);
        std::printf(" %7.1f%%", rate * 100.0);
      }
      std::printf(" %7.1f%%\n", tpc.TopCMass(lines) * 100.0);
    }
  }
  std::printf("\nShape check: CoT tracks TPC at every size and skew; LRU "
              "trails everything;\nLRU-2 is the closest static "
              "competitor; the spread narrows as skew grows.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
