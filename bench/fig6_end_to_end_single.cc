// Reproduces paper Figure 6: end-to-end running time of 50K lookups issued
// by a SINGLE client thread (1M/20), isolating skew effects from
// client/server thrashing.
//
// Paper observations: without a front-end cache the Zipf 0.99 / 1.20 runs
// take 3.2x / 4.5x the uniform run — proportional to the workloads'
// imbalance factors (1.73 / 4.18) rather than the much larger thrashing-
// amplified multiples of Figure 5 — and a small front-end cache makes the
// skewed runs *faster* than uniform, because lookups are served locally.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "metrics/summary.h"
#include "sim/end_to_end_sim.h"

namespace {

using namespace cot;

struct Workload {
  const char* label;
  workload::Distribution dist;
  double skew;
};

int Run(bool full) {
  bench::Banner("Figure 6", "end-to-end runtime, ONE client, 50K lookups",
                full);

  const uint64_t ops = full ? 50000 : 20000;
  const int repetitions = full ? 10 : 3;
  const size_t lines = 512;
  sim::LatencyModel model;

  const Workload workloads[] = {
      {"uniform", workload::Distribution::kUniform, 0.0},
      {"zipf-0.99", workload::Distribution::kZipfian, 0.99},
      {"zipf-1.20", workload::Distribution::kZipfian, 1.20},
  };

  std::printf("%10s %10s %14s %14s %14s\n", "workload", "policy",
              "runtime(ms)", "vs no-cache", "max-backlog");
  double uniform_nocache_ms = 0.0;
  for (const Workload& w : workloads) {
    cluster::ExperimentConfig config;
    config.num_servers = 8;
    config.num_clients = 1;
    config.key_space = full ? 1000000 : 100000;
    config.total_ops = ops;
    workload::PhaseSpec phase;
    phase.distribution = w.dist;
    phase.skew = w.skew;
    phase.read_fraction = 0.998;
    config.phases = {phase};
    size_t ratio = w.dist == workload::Distribution::kUniform
                       ? 4
                       : bench::TrackerRatioForSkew(w.skew);

    double nocache_ms = 0.0;
    std::vector<std::string> rows = {"none"};
    for (const auto& name : bench::PolicyNames()) rows.push_back(name);
    for (const auto& name : rows) {
      metrics::Summary runtime_ms;
      double backlog = 0.0;
      for (int rep = 0; rep < repetitions; ++rep) {
        config.seed = 7 + static_cast<uint64_t>(rep) * 1000;
        auto result = sim::RunEndToEnd(
            config,
            [&](uint32_t) { return bench::MakePolicy(name, lines, ratio); },
            model);
        if (!result.ok()) {
          std::fprintf(stderr, "sim failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        runtime_ms.Add(result->makespan_us / 1000.0);
        backlog = std::max(backlog, result->max_backlog);
      }
      double mean = runtime_ms.mean();
      if (name == "none") {
        nocache_ms = mean;
        if (w.dist == workload::Distribution::kUniform) {
          uniform_nocache_ms = mean;
        }
      }
      std::printf("%10s %10s %14.1f %13.0f%% %14.1f\n", w.label,
                  name.c_str(), mean, 100.0 * (1.0 - mean / nocache_ms),
                  backlog);
    }
    if (w.dist != workload::Distribution::kUniform &&
        uniform_nocache_ms > 0.0) {
      std::printf("%10s  no-cache runtime is %.2fx uniform (paper: %.1fx; "
                  "imbalance factor %.2f)\n",
                  w.label, nocache_ms / uniform_nocache_ms,
                  w.skew < 1.0 ? 3.2 : 4.5, w.skew < 1.0 ? 1.73 : 4.18);
    }
  }
  std::printf("\nShape check: skew slows even a single client (no "
              "thrashing: backlog ~0) and the penalty grows with the\n"
              "imbalance factor; with a front-end cache the skewed runs "
              "become cheaper than uniform, as in the paper.\nNote: the "
              "paper's 3.2x/4.5x magnitudes imply server-side degradation "
              "(e.g. paging 750 KB values in 4 GB\ninstances) that our "
              "traffic-share service model reproduces only "
              "directionally — see EXPERIMENTS.md.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
