#ifndef COT_BENCH_BENCH_UTIL_H_
#define COT_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction bench binaries: scale
// handling, policy factories, table formatting.
//
// Every bench accepts `--full` (or env COT_BENCH_SCALE=full) to run at the
// paper's original workload sizes; the default is a scaled-down run that
// preserves the shape of every result while finishing in seconds.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/policy_factory.h"

namespace cot::bench {

/// True when the paper-scale run was requested.
inline bool FullScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("COT_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

/// Named replacement-policy factory (delegates to the library's
/// core::MakePolicy). `tracker_ratio` sets CoT's K/C and LRU-2's history/C
/// (the paper always configures them equally). Unknown names abort — a
/// bench misconfiguration is a bug, not a runtime condition.
inline std::unique_ptr<cache::Cache> MakePolicy(const std::string& name,
                                                size_t cache_lines,
                                                size_t tracker_ratio) {
  auto cache = core::MakePolicy(name, cache_lines, tracker_ratio);
  if (!cache.ok()) {
    std::fprintf(stderr, "bench policy '%s': %s\n", name.c_str(),
                 cache.status().ToString().c_str());
    std::abort();
  }
  return std::move(cache).value();
}

/// The five competing policies, in the paper's reporting order.
inline const std::vector<std::string>& PolicyNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"lru", "lfu", "arc", "lru-2", "cot"};
  return names;
}

/// Prints a header banner for a bench.
inline void Banner(const char* experiment, const char* description,
                   bool full) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("scale: %s\n", full ? "FULL (paper-size workload)"
                                  : "default (scaled down, same shape; "
                                    "pass --full for paper size)");
  std::printf("=============================================================\n");
}

/// The paper's tracker-to-cache ratios per Zipfian skew (Section 5.2).
inline size_t TrackerRatioForSkew(double skew) {
  if (skew < 0.95) return 16;
  if (skew < 1.1) return 8;
  return 4;
}

}  // namespace cot::bench

#endif  // COT_BENCH_BENCH_UTIL_H_
