// Reproduces the paper's appendix figure ("Effect of Tracker Size on
// CoT's Hit Rate"): cache hit rate as the tracker size K grows while the
// cache size C stays fixed, on Zipfian 0.99.
//
// Paper setup: 10M accesses, C in {1,3,7,...,511}, K >= 2C. Expected
// shape: the first tracker doublings raise the hit rate sharply (up to
// ~2.88x for small caches), then the curve saturates around K = 16C —
// which is exactly the ratio CoT's phase-1 discovery converges to for
// this workload.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

double MeasureHitRate(size_t cache_lines, size_t tracker_lines,
                      uint64_t keys, uint64_t ops) {
  core::CotCache cache(cache_lines, tracker_lines);
  workload::ZipfianGenerator gen(keys, 0.99);
  Rng rng(42);
  uint64_t warmup = ops / 2;
  for (uint64_t i = 0; i < warmup; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  cache.ResetStats();
  for (uint64_t i = warmup; i < ops; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  return cache.stats().HitRate();
}

int Run(bool full) {
  bench::Banner("Appendix figure", "hit rate vs tracker size at fixed "
                                   "cache size (Zipf 0.99)", full);

  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t ops = full ? 10000000 : 1000000;
  std::vector<size_t> cache_sizes =
      full ? std::vector<size_t>{1, 3, 7, 15, 31, 63, 127, 255, 511}
           : std::vector<size_t>{1, 7, 31, 127, 511};
  std::vector<size_t> ratios = {2, 4, 8, 16, 32};

  std::printf("%8s", "C \\ K/C");
  for (size_t r : ratios) std::printf(" %7zux", r);
  std::printf("\n");
  for (size_t c : cache_sizes) {
    std::printf("%8zu", c);
    double prev = 0.0;
    for (size_t r : ratios) {
      double rate = MeasureHitRate(c, r * c, keys, ops);
      std::printf(" %7.2f%%", rate * 100.0);
      prev = rate;
    }
    (void)prev;
    std::printf("\n");
  }
  std::printf("\nShape check: each row rises steeply through the first "
              "doublings and flattens by ~16x;\nsmall caches gain the "
              "most from extra tracking.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
