// Extension experiment: CoT versus — and composed with — the server-side
// load-balancing families from the paper's related work (Section 7):
//
//   slicer       Slicer-style centralized slice reassignment (Adya et al.)
//   replication  server-side hot-key replication (Hong et al.)
//   cot          CoT front-end caches, plain consistent hashing
//   cot+slicer   both (the paper's claim: "server side solutions are
//                complementary to CoT")
//
// Reported per scheme: back-end load-imbalance, total back-end load
// (front-end caches *remove* lookups; server-side schemes only move
// them), reconfiguration churn (slice load moved), replica count, and
// update fan-out (replication multiplies invalidations by gamma).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "cluster/hot_key_replicator.h"
#include "cluster/slice_map.h"
#include "metrics/imbalance.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

struct SchemeResult {
  double imbalance = 0.0;
  uint64_t backend_lookups = 0;
  double moved_fraction = 0.0;   // slicer churn (avg per rebalance)
  size_t replicated_keys = 0;
  uint64_t backend_deletes = 0;  // update fan-out
};

struct Scheme {
  const char* name;
  bool use_slicer;
  bool use_replication;
  bool use_cot;
};

SchemeResult RunScheme(const Scheme& scheme, uint64_t key_space,
                       uint64_t total_ops, uint32_t num_clients) {
  cluster::CacheCluster cluster(8, key_space);
  // Preload (the YCSB load phase).
  for (uint64_t k = 0; k < key_space; ++k) {
    cluster.server(cluster.ring().ServerFor(k))
        .Set(k, cluster::StorageLayer::InitialValue(k));
  }
  cluster.ResetServerCounters();

  std::unique_ptr<cluster::SliceMap> slicer;
  std::unique_ptr<cluster::HotKeyReplicator> replicator;
  if (scheme.use_slicer) {
    slicer = std::make_unique<cluster::SliceMap>(8, 4096);
  }
  if (scheme.use_replication) {
    replicator = std::make_unique<cluster::HotKeyReplicator>(
        8u, /*hot_share=*/0.02, /*gamma=*/8, /*tracker_size=*/256);
  }

  std::vector<std::unique_ptr<cluster::FrontendClient>> clients;
  std::vector<workload::OpStream> streams;
  for (uint32_t i = 0; i < num_clients; ++i) {
    auto cache = scheme.use_cot
                     ? std::make_unique<core::CotCache>(512, 2048)
                     : nullptr;
    clients.push_back(std::make_unique<cluster::FrontendClient>(
        &cluster, std::move(cache)));
    if (slicer) clients.back()->SetRouter(slicer.get());
    if (replicator) clients.back()->SetRouter(replicator.get());
    workload::PhaseSpec phase;
    phase.distribution = workload::Distribution::kZipfian;
    phase.skew = 1.2;
    phase.read_fraction = 0.998;
    phase.num_ops = total_ops / num_clients;
    auto stream = workload::OpStream::Create(key_space, {phase}, 42 + i);
    streams.push_back(std::move(stream).value());
  }

  const uint64_t epoch = total_ops / 20;  // 20 control-plane rounds
  uint64_t ops = 0;
  double moved_sum = 0.0;
  int rebalances = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (uint32_t i = 0; i < num_clients; ++i) {
      if (streams[i].Done()) continue;
      clients[i]->Apply(streams[i].Next());
      progressed = true;
      if (++ops % epoch == 0) {
        if (slicer) {
          moved_sum += slicer->Rebalance(&cluster);
          ++rebalances;
        }
        if (replicator) replicator->EndEpoch(clients[i]->route_view());
      }
    }
  }

  SchemeResult result;
  result.imbalance = metrics::LoadImbalance(cluster.PerServerLookups());
  result.backend_lookups = metrics::TotalLoad(cluster.PerServerLookups());
  result.moved_fraction = rebalances == 0 ? 0.0 : moved_sum / rebalances;
  result.replicated_keys = replicator ? replicator->replicated_count() : 0;
  for (uint32_t s = 0; s < cluster.server_count(); ++s) {
    result.backend_deletes += cluster.server(s).delete_count();
  }
  return result;
}

int Run(bool full) {
  bench::Banner("Extension", "CoT vs server-side balancing (Slicer-style, "
                             "hot-key replication)", full);
  const uint64_t key_space = full ? 1000000 : 100000;
  const uint64_t total_ops = full ? 10000000 : 2000000;
  const uint32_t num_clients = 20;

  const Scheme schemes[] = {
      {"baseline", false, false, false},
      {"slicer", true, false, false},
      {"replication", false, true, false},
      {"cot", false, false, true},
      {"cot+slicer", true, false, true},
  };
  std::printf("%-12s %10s %16s %14s %12s %12s\n", "scheme", "imbalance",
              "backend-lookups", "slice-churn", "replicas", "deletes");
  for (const Scheme& scheme : schemes) {
    SchemeResult r = RunScheme(scheme, key_space, total_ops, num_clients);
    std::printf("%-12s %10.2f %16llu %13.1f%% %12zu %12llu\n", scheme.name,
                r.imbalance,
                static_cast<unsigned long long>(r.backend_lookups),
                r.moved_fraction * 100.0, r.replicated_keys,
                static_cast<unsigned long long>(r.backend_deletes));
  }
  std::printf("\nShape check: all three schemes balance the back-end, but "
              "only CoT also *removes* most of the load;\nslicer pays "
              "recurring slice churn, replication pays update fan-out. "
              "cot+slicer reaches the lowest\nimbalance (the paper's "
              "complementarity claim) — though slicing the small residual "
              "load churns more,\nwhich is itself a reason to let CoT "
              "absorb the skew first.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
