// Reproduces paper Figure 8: after converging on a Zipfian 1.2 workload
// (the Figure 7 endpoint), the workload turns uniform and CoT shrinks
// tracker and cache back toward a negligible footprint without violating
// the target load-imbalance I_t = 1.1.
//
// Expected shape: the average hit per cache-line collapses when the skew
// disappears; CoT resets the tracker ratio to 2:1, finds that growing the
// tracker buys nothing (uniform), then halves cache and tracker epoch
// after epoch while I_c stays at/below target, parking at the minimum.

#include <cstdio>

#include <cstring>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "metrics/epoch_series.h"
#include "workload/op_stream.h"

namespace {

using namespace cot;

int Run(bool full, bool csv) {
  bench::Banner("Figure 8", "adaptive shrink after the workload turns "
                            "uniform", full);

  const uint64_t key_space = full ? 1000000 : 100000;
  const uint64_t phase1_budget = full ? 40000000 : 8000000;
  const uint64_t phase2_budget = full ? 40000000 : 12000000;

  cluster::CacheCluster cluster(8, key_space);
  auto client = std::make_unique<cluster::FrontendClient>(
      &cluster, std::make_unique<core::CotCache>(2, 4));
  core::ResizerConfig config;
  config.target_imbalance = 1.1;
  config.initial_epoch_size = 5000;
  config.warmup_epochs = full ? 5 : 2;
  if (!client->EnableElasticResizing(config).ok()) return 1;
  core::ElasticResizer* resizer = client->resizer();
  core::CotCache* cache =
      dynamic_cast<core::CotCache*>(client->local_cache());

  // Phase A (Figure 7): converge on the skewed workload.
  {
    workload::PhaseSpec zipf;
    zipf.distribution = workload::Distribution::kZipfian;
    zipf.skew = 1.2;
    zipf.read_fraction = 0.998;
    zipf.num_ops = 0;
    auto stream = workload::OpStream::Create(key_space, {zipf}, /*seed=*/42);
    if (!stream.ok()) return 1;
    uint64_t ops = 0;
    size_t steady_mark = 0;
    bool in_steady = false;
    while (ops < phase1_budget) {
      client->Apply(stream->Next());
      ++ops;
      if (resizer->phase() == core::ResizerPhase::kSteady) {
        if (!in_steady) {
          in_steady = true;
          steady_mark = resizer->history().size();
        }
        if (resizer->history().size() >= steady_mark + 5) break;
      } else {
        in_steady = false;
      }
    }
  }
  size_t peak_cache = cache->capacity();
  size_t peak_tracker = cache->tracker_capacity();
  size_t shrink_start_epoch = resizer->history().size();
  std::printf("skewed phase converged at cache=%zu tracker=%zu "
              "(epoch %zu); switching workload to uniform\n\n",
              peak_cache, peak_tracker, shrink_start_epoch);

  // Phase B (Figure 8): uniform workload, watch the shrink.
  {
    workload::PhaseSpec uniform;
    uniform.distribution = workload::Distribution::kUniform;
    uniform.read_fraction = 0.998;
    uniform.num_ops = 0;
    auto stream =
        workload::OpStream::Create(key_space, {uniform}, /*seed=*/99);
    if (!stream.ok()) return 1;
    uint64_t ops = 0;
    while (ops < phase2_budget) {
      client->Apply(stream->Next());
      ++ops;
      if (cache->capacity() <= 2) break;  // reached the minimum footprint
    }
  }

  metrics::EpochSeries series(
      {"cache", "tracker", "ic_raw", "ic_smooth", "alpha_c", "alpha_t"});
  for (size_t i = shrink_start_epoch; i < resizer->history().size(); ++i) {
    const core::EpochReport& r = resizer->history()[i];
    series.Append({static_cast<double>(r.cache_capacity),
                   static_cast<double>(r.tracker_capacity),
                   r.current_imbalance, r.smoothed_imbalance, r.alpha_c,
                   r.alpha_target});
  }
  std::printf("%s\n", csv ? series.ToCsv().c_str()
                          : series.ToTable(40).c_str());

  bool violated = false;
  for (size_t i = shrink_start_epoch; i < resizer->history().size(); ++i) {
    if (resizer->history()[i].smoothed_imbalance > 1.1 * 1.25) {
      violated = true;
    }
  }
  std::printf("final: cache=%zu tracker=%zu (from peak %zu/%zu); target "
              "violated during shrink: %s\n",
              cache->capacity(), cache->tracker_capacity(), peak_cache,
              peak_tracker, violated ? "YES (unexpected)" : "no");
  std::printf("\nShape check: tracker ratio resets to 2:1, a probe "
              "doubling buys no hit-rate, then cache and tracker\nhalve "
              "step by step to a negligible footprint while I_c stays at "
              "or below target.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;  // plot-ready output
  }
  return Run(cot::bench::FullScale(argc, argv), csv);
}
