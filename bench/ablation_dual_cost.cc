// Ablation B: the dual-cost hotness model (paper Equation 1). Update
// accesses subtract from a key's hotness because every update invalidates
// the cached copy; a frequently updated key therefore should not hold a
// cache line no matter how often it is read.
//
// Workload: a read-hot set and an equally popular but update-heavy set
// (75% of touches to odd-ranked keys are updates). Sweeping the update
// weight u_w exposes the trade the model makes: keeping update-heavy keys
// cacheable (u_w = 0) squeezes out a little more read hit-rate, but every
// one of their updates invalidates a front-end copy — the consistency-
// management traffic (update propagation, incarnation tracking across
// thousands of front-ends) that the paper's Section 1 argues dominates
// the cost of front-end caching. u_w > 0 buys near-zero invalidation
// traffic for a ~1-2pp read-hit cost.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

struct Outcome {
  double hit_rate;
  uint64_t invalidations;
};

Outcome RunWith(double update_weight, uint64_t keys, uint64_t ops) {
  core::CotCacheConfig config;
  config.cache_capacity = 64;
  config.tracker_capacity = 512;
  config.weights.read_weight = 1.0;
  config.weights.update_weight = update_weight;
  core::CotCache cache(config);

  // Interleaved population: even ranks are read-only, odd ranks are
  // updated half the time they are touched.
  workload::ZipfianGenerator gen(keys, 0.99);
  Rng rng(42);
  uint64_t warmup = ops / 2;
  for (uint64_t i = 0; i < ops; ++i) {
    if (i == warmup) cache.ResetStats();
    cache::Key k = gen.Next(rng);
    bool update_prone = (k % 2) == 1;
    if (update_prone && rng.Bernoulli(0.75)) {
      cache.Invalidate(k);  // update path
      continue;
    }
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  return Outcome{cache.stats().HitRate(), cache.stats().invalidations};
}

int Run(bool full) {
  bench::Banner("Ablation B", "dual-cost hotness model (update weight u_w)",
                full);
  const uint64_t keys = full ? 1000000 : 100000;
  const uint64_t ops = full ? 10000000 : 1000000;

  std::printf("%8s %12s %16s\n", "u_w", "hit-rate", "invalidations");
  double base_rate = 0.0;
  for (double uw : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    Outcome o = RunWith(uw, keys, ops);
    if (uw == 0.0) base_rate = o.hit_rate;
    std::printf("%8.1f %11.2f%% %16llu\n", uw, o.hit_rate * 100.0,
                static_cast<unsigned long long>(o.invalidations));
  }
  std::printf("\nShape check: u_w > 0 pushes update-heavy keys out of the "
              "cache — invalidation traffic (the paper's\nconsistency-cost "
              "driver) collapses to ~zero at a read-hit cost of only a "
              "couple of points off the\nu_w=0 baseline (%.2f%%).\n",
              base_rate * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(cot::bench::FullScale(argc, argv)); }
