// Microbenchmarks (google-benchmark) for the per-operation costs the
// paper's Section 5.3 argues are negligible: each replacement policy's
// read-through access, the space-saving tracker update, and the
// consistent-hash lookup. LFU/LRU-2/CoT pay O(log C) heap maintenance;
// the end-to-end experiments show this disappears against even a
// same-rack RTT.

#include <benchmark/benchmark.h>

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "cluster/cache_cluster.h"
#include "cluster/consistent_hash_ring.h"
#include "cluster/frontend_client.h"
#include "cluster/health_monitor.h"
#include "core/cot_cache.h"
#include "core/space_saving_tracker.h"
#include "metrics/event_tracer.h"
#include "util/flat_hash_map.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

constexpr uint64_t kKeys = 100000;
constexpr size_t kLines = 512;

void PolicyAccessLoop(benchmark::State& state, const char* policy) {
  auto cache = bench::MakePolicy(policy, kLines,
                                 bench::TrackerRatioForSkew(0.99));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    cache::Key k = gen.Next(rng);
    auto v = cache->Get(k);
    if (!v.has_value()) cache->Put(k, k);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LruAccess(benchmark::State& state) { PolicyAccessLoop(state, "lru"); }
void BM_LfuAccess(benchmark::State& state) { PolicyAccessLoop(state, "lfu"); }
void BM_ArcAccess(benchmark::State& state) { PolicyAccessLoop(state, "arc"); }
void BM_Lru2Access(benchmark::State& state) {
  PolicyAccessLoop(state, "lru-2");
}
void BM_CotAccess(benchmark::State& state) { PolicyAccessLoop(state, "cot"); }

// Per-path CoT access costs. BM_CotAccess above mixes the three regimes a
// Zipfian stream produces (resident hit, tracked miss, untracked arrival),
// which makes a win attributable to nothing in particular; these three pin
// each path in steady state so regressions name the path that moved.

// Pure hit path: key space == cache lines, so after warmup every Get is a
// resident hit — one tracker probe, O(1) lazy hotness update, no heap op.
void BM_CotGetHit(benchmark::State& state) {
  core::CotCache cache(kLines, 4 * kLines);
  for (uint64_t k = 0; k < kLines; ++k) {
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  Rng rng(42);
  for (auto _ : state) {
    auto v = cache.Get(rng.NextBelow(kLines));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

// Tracked-miss path: residents are made hot first, then only
// tracked-but-not-cached keys are probed. Get never admits, so every
// iteration is a tracker counter update + a declined residency check, with
// no tracker eviction and no cache mutation.
void BM_CotGetMiss(benchmark::State& state) {
  core::CotCache cache(kLines, 4 * kLines);
  for (uint64_t k = 0; k < kLines; ++k) {
    for (int r = 0; r < 8; ++r) (void)cache.Get(k);
    cache.Put(k, k);
  }
  // Fill the remaining tracker slots with the cold keys the loop probes.
  for (uint64_t k = kLines; k < 4 * kLines; ++k) (void)cache.Get(k);
  Rng rng(42);
  for (auto _ : state) {
    auto v = cache.Get(kLines + rng.NextBelow(3 * kLines));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

// Untracked-arrival path: a monotone fresh-key stream, so once the tracker
// fills every Get replaces the tracker minimum (the space-saving move —
// min-repair + counter inheritance) and the read-through Put offers the
// inheriting newcomer for admission.
void BM_CotUntrackedArrival(benchmark::State& state) {
  core::CotCache cache(kLines, 4 * kLines);
  uint64_t k = 0;
  for (; k < 8 * kLines; ++k) {
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  for (auto _ : state) {
    auto v = cache.Get(k);
    if (!v.has_value()) cache.Put(k, k);
    ++k;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TrackerTrackAccess(benchmark::State& state) {
  core::SpaceSavingTracker tracker(static_cast<size_t>(state.range(0)));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    auto r = tracker.TrackAccess(gen.Next(rng), core::AccessType::kRead);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

// Per-delivery cost of the gray-failure defense: one HealthMonitor
// observation (P-squared quantile update + EWMA score + lameduck check)
// on the hot path of every successful shard delivery. The defense's
// "negligible when healthy" claim rests on this staying O(ns).
void BM_HealthMonitorObserve(benchmark::State& state) {
  cluster::HealthMonitor monitor(8, cluster::HealthConfig{});
  Rng rng(42);
  uint32_t shard = 0;
  for (auto _ : state) {
    double latency = 300.0 + static_cast<double>(rng.NextUint64() % 200);
    auto t = monitor.Observe(shard, latency, 394.0);
    benchmark::DoNotOptimize(t);
    shard = (shard + 1) % 8;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RingLookup(benchmark::State& state) {
  cluster::ConsistentHashRing ring(8, static_cast<uint32_t>(state.range(0)));
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ServerFor(rng.NextUint64()));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianGenerator gen(1000000, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}

// The Tao-style 95/5 read/update mix through the CoT policy: updates
// invalidate, so the steady state mixes hits, misses, and re-admissions.
void BM_CotMixedReadUpdate(benchmark::State& state) {
  auto cache =
      bench::MakePolicy("cot", kLines, bench::TrackerRatioForSkew(0.99));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    cache::Key k = gen.Next(rng);
    if (rng.NextBelow(100) < 95) {
      auto v = cache->Get(k);
      if (!v.has_value()) cache->Put(k, k);
      benchmark::DoNotOptimize(v);
    } else {
      cache->Invalidate(k);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// Head-to-head find-hit cost of the robin-hood flat map against
// std::unordered_map on the same pre-sized key set and access pattern —
// the swap every policy directory made this PR.
template <typename Map>
void MapFindHitLoop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Map map(n);
  std::vector<uint64_t> keys(n);
  Rng fill(7);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = fill.NextUint64();
    map[keys[i]] = i;
  }
  Rng rng(42);
  for (auto _ : state) {
    auto it = map.find(keys[rng.NextBelow(n)]);
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapVsUnorderedMap_Flat(benchmark::State& state) {
  MapFindHitLoop<FlatHashMap<uint64_t, size_t>>(state);
}
void BM_FlatMapVsUnorderedMap_Std(benchmark::State& state) {
  MapFindHitLoop<std::unordered_map<uint64_t, size_t>>(state);
}

// Cost of the observability hooks on the client read path: the same
// elastic CoT client with no tracer attached (hooks compile in, one
// predicted null check on cold paths) versus a live tracer recording epoch
// boundaries and resizer decisions. BM_CotAccess above is the no-hook
// baseline (bare policy, no client library at all). The disabled case must
// stay within ~2% of it per the observability design note in DESIGN.md.
void TracedClientLoop(benchmark::State& state, bool attach_tracer) {
  cluster::CacheCluster cluster(8, kKeys);
  cluster::FrontendClient client(
      &cluster, std::make_unique<core::CotCache>(kLines, 4 * kLines));
  metrics::EventTracer tracer(1 << 16, /*client=*/0);
  if (attach_tracer) client.SetTracer(&tracer);
  core::ResizerConfig config;
  Status enabled = client.EnableElasticResizing(config);
  if (!enabled.ok()) {
    state.SkipWithError("EnableElasticResizing failed");
    return;
  }
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Get(gen.Next(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TracerOverhead_Disabled(benchmark::State& state) {
  TracedClientLoop(state, false);
}
void BM_TracerOverhead_Enabled(benchmark::State& state) {
  TracedClientLoop(state, true);
}

// Amortized per-key cost of the batched read path. Keys are pregenerated
// (zipfian, same skew as the access benches) so the timed region is pure
// MultiGet: local probe + shard-grouped fan-out + fills, one lock and one
// route per shard per batch. Each benchmark iteration consumes ONE key —
// the batch flushes every `batch` iterations — so the reported time is
// directly the ns/key a batching driver pays. Arg(1) is the degenerate
// single-key batch (per-key transport plus batch bookkeeping); the spread
// to Arg(16)/Arg(64) is the amortization itself.
void MultiGetLoop(benchmark::State& state, std::unique_ptr<cache::Cache> lc) {
  const size_t batch = static_cast<size_t>(state.range(0));
  cluster::CacheCluster cluster(8, kKeys);
  cluster::FrontendClient client(&cluster, std::move(lc));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  constexpr size_t kPregen = 1 << 20;  // divisible by every batch arg
  std::vector<cache::Key> keys(kPregen);
  for (auto& k : keys) k = gen.Next(rng);
  size_t pos = 0;
  size_t n = 0;
  for (auto _ : state) {
    if (++n == batch) {
      n = 0;
      benchmark::DoNotOptimize(
          client.MultiGet(std::span<const cache::Key>(&keys[pos], batch)));
      pos = (pos + batch) & (kPregen - 1);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// The full client: a CoT front-end cache absorbs the hot tail and only
// misses fan out.
void BM_MultiGetBatch(benchmark::State& state) {
  MultiGetLoop(state,
               std::make_unique<core::CotCache>(kLines, 4 * kLines));
}

// Transport only (no local cache): every key pays routing + the
// shard-grouped backend visit, so this isolates what batching amortizes.
void BM_MultiGetTransport(benchmark::State& state) {
  MultiGetLoop(state, nullptr);
}

BENCHMARK(BM_LruAccess);
BENCHMARK(BM_LfuAccess);
BENCHMARK(BM_ArcAccess);
BENCHMARK(BM_Lru2Access);
BENCHMARK(BM_CotAccess);
BENCHMARK(BM_CotGetHit);
BENCHMARK(BM_CotGetMiss);
BENCHMARK(BM_CotUntrackedArrival);
BENCHMARK(BM_TrackerTrackAccess)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_HealthMonitorObserve);
BENCHMARK(BM_RingLookup)->Arg(128)->Arg(16384);
BENCHMARK(BM_ZipfianNext);
BENCHMARK(BM_CotMixedReadUpdate);
BENCHMARK(BM_FlatMapVsUnorderedMap_Flat)->Arg(512)->Arg(32768);
BENCHMARK(BM_FlatMapVsUnorderedMap_Std)->Arg(512)->Arg(32768);
BENCHMARK(BM_TracerOverhead_Disabled);
BENCHMARK(BM_TracerOverhead_Enabled);
BENCHMARK(BM_MultiGetBatch)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_MultiGetTransport)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
