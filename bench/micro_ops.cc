// Microbenchmarks (google-benchmark) for the per-operation costs the
// paper's Section 5.3 argues are negligible: each replacement policy's
// read-through access, the space-saving tracker update, and the
// consistent-hash lookup. LFU/LRU-2/CoT pay O(log C) heap maintenance;
// the end-to-end experiments show this disappears against even a
// same-rack RTT.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "cluster/consistent_hash_ring.h"
#include "core/space_saving_tracker.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

using namespace cot;

constexpr uint64_t kKeys = 100000;
constexpr size_t kLines = 512;

void PolicyAccessLoop(benchmark::State& state, const char* policy) {
  auto cache = bench::MakePolicy(policy, kLines,
                                 bench::TrackerRatioForSkew(0.99));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    cache::Key k = gen.Next(rng);
    auto v = cache->Get(k);
    if (!v.has_value()) cache->Put(k, k);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LruAccess(benchmark::State& state) { PolicyAccessLoop(state, "lru"); }
void BM_LfuAccess(benchmark::State& state) { PolicyAccessLoop(state, "lfu"); }
void BM_ArcAccess(benchmark::State& state) { PolicyAccessLoop(state, "arc"); }
void BM_Lru2Access(benchmark::State& state) {
  PolicyAccessLoop(state, "lru-2");
}
void BM_CotAccess(benchmark::State& state) { PolicyAccessLoop(state, "cot"); }

void BM_TrackerTrackAccess(benchmark::State& state) {
  core::SpaceSavingTracker tracker(static_cast<size_t>(state.range(0)));
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    auto r = tracker.TrackAccess(gen.Next(rng), core::AccessType::kRead);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RingLookup(benchmark::State& state) {
  cluster::ConsistentHashRing ring(8, static_cast<uint32_t>(state.range(0)));
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ServerFor(rng.NextUint64()));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianGenerator gen(1000000, 0.99);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_LruAccess);
BENCHMARK(BM_LfuAccess);
BENCHMARK(BM_ArcAccess);
BENCHMARK(BM_Lru2Access);
BENCHMARK(BM_CotAccess);
BENCHMARK(BM_TrackerTrackAccess)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_RingLookup)->Arg(128)->Arg(16384);
BENCHMARK(BM_ZipfianNext);

}  // namespace

BENCHMARK_MAIN();
