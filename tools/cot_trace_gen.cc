// cot_trace_gen: writes a synthetic access trace in the text format
// `cot_run --trace` (and workload::Trace) consume — handy for smoke
// testing trace pipelines and for sharing reproducible workloads.
//
// With --binary it instead emits the mmap-able COTBTRC1 format that the
// open-loop replayer (`cot_run --open-loop --trace-bin`) maps read-only —
// 8 bytes per op, no parsing at replay time.
//
// Examples:
//   cot_trace_gen --ops 100000 --keys 10000 --skew 1.2 > trace.txt
//   cot_trace_gen --distribution uniform --read-fraction 0.9 --out t.txt
//   cot_trace_gen --ops 1000000 --binary --out trace.bin

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "util/flags.h"
#include "workload/binary_trace.h"
#include "workload/op_stream.h"
#include "workload/trace.h"

namespace {

using namespace cot;

int RunTool(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("distribution", "zipfian",
                  "zipfian|uniform|hotspot|scrambled|permuted");
  flags.AddDouble("skew", 0.99, "Zipfian skew parameter");
  flags.AddDouble("read-fraction", 0.998, "fraction of ops that are reads");
  flags.AddInt64("keys", 100000, "key-space size");
  flags.AddInt64("ops", 100000, "operations to generate");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddString("out", "", "output file (default: stdout)");
  flags.AddBool("binary", false,
                "write the mmap-able binary format (COTBTRC1) instead of "
                "text; requires --out");

  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("cot_trace_gen — synthetic trace writer\n%s",
                flags.Help().c_str());
    return 0;
  }

  workload::PhaseSpec phase;
  phase.skew = flags.GetDouble("skew");
  phase.read_fraction = flags.GetDouble("read-fraction");
  phase.num_ops = static_cast<uint64_t>(flags.GetInt64("ops"));
  const std::string& dist = flags.GetString("distribution");
  if (dist == "zipfian") {
    phase.distribution = workload::Distribution::kZipfian;
  } else if (dist == "uniform") {
    phase.distribution = workload::Distribution::kUniform;
  } else if (dist == "hotspot") {
    phase.distribution = workload::Distribution::kHotspot;
  } else if (dist == "scrambled") {
    phase.distribution = workload::Distribution::kScrambledZipfian;
  } else if (dist == "permuted") {
    phase.distribution = workload::Distribution::kPermutedZipfian;
  } else {
    std::fprintf(stderr, "unknown --distribution '%s'\n", dist.c_str());
    return 2;
  }

  auto stream = workload::OpStream::Create(
      static_cast<uint64_t>(flags.GetInt64("keys")), {phase},
      static_cast<uint64_t>(flags.GetInt64("seed")));
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }

  const std::string& out_path = flags.GetString("out");
  if (flags.GetBool("binary")) {
    if (out_path.empty()) {
      std::fprintf(stderr, "--binary requires --out (no stdout mode)\n");
      return 2;
    }
    workload::BinaryTraceWriter writer;
    Status ws = writer.Open(out_path);
    if (ws.ok()) {
      while (!stream->Done() && ws.ok()) ws = writer.Append(stream->Next());
    }
    if (ws.ok()) ws = writer.Finish();
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %llu binary ops to %s\n",
                 static_cast<unsigned long long>(writer.count()),
                 out_path.c_str());
    return 0;
  }

  workload::Trace trace;
  while (!stream->Done()) trace.Append(stream->Next());

  if (out_path.empty()) {
    std::fputs(trace.ToText().c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << trace.ToText();
    std::fprintf(stderr, "wrote %zu ops to %s\n", trace.size(),
                 out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunTool(argc, argv); }
