#!/usr/bin/env python3
"""Compares a fresh BENCH_micro.json against a committed baseline.

Both files are google-benchmark JSON output, either a single run object or
a list of run objects (the repo's BENCH_micro.json concatenates one object
per bench binary). For every benchmark name present in both files the tool
compares real_time — preferring the `median` aggregate when the file was
recorded with repetitions — and fails if any benchmark slowed down by more
than the noise threshold.

Exit status: 0 = no regression, 1 = regression beyond threshold,
2 = usage / malformed input. Benchmarks present in only one of the two
files are reported as warnings but never fail the gate — new benches can
land before the baseline is re-recorded, and retiring a bench does not
block CI. An empty intersection is likewise a warning, not an error.

Usage:
  tools/check_bench_regression.py BASELINE FRESH [--threshold 1.25]
      [--filter REGEX] [--require REGEX ...]

--require REGEX (repeatable) additionally demands that at least one
benchmark in the FRESH run matches each given regex. This gates whole
benchmark *families*: a rename or a silently dropped registration would
otherwise sail through as a "benchmark only in baseline" warning. Missing
required families fail the gate even when nothing regressed.

The threshold is a ratio: fresh/baseline above it fails. The default 1.25
tolerates scheduler noise on a quiet machine; CI smoke jobs run on shared
machines with a different CPU than the recording host, so they pass a much
larger value — there the check guards the harness plumbing and
catastrophic (algorithmic) regressions, not single-digit percents.
Speedups never fail, whatever their size.
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    """Returns {benchmark name -> real_time ns} for one JSON file.

    Prefers the `median` aggregate; falls back to the plain iteration
    entry when the file was recorded without repetitions. Non-timing
    aggregates (stddev, cv, mean) are ignored.
    """
    with open(path) as f:
        data = json.load(f)
    runs = data if isinstance(data, list) else [data]
    medians = {}
    singles = {}
    for run in runs:
        for b in run.get("benchmarks", []):
            agg = b.get("aggregate_name")
            if agg == "median":
                name = re.sub(r"_median$", "", b["name"])
                medians[name] = b["real_time"]
            elif agg is None and b.get("run_type", "iteration") == "iteration":
                singles[b["name"]] = b["real_time"]
    out = dict(singles)
    out.update(medians)  # medians win over raw iterations of the same name
    return out


def main():
    parser = argparse.ArgumentParser(
        description="fail when fresh benchmark timings regress past a "
        "threshold vs a baseline"
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly recorded JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="max tolerated fresh/baseline real_time ratio (default 1.25)",
    )
    parser.add_argument(
        "--filter",
        default="",
        help="only check benchmark names matching this regex",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="REGEX",
        help="fail unless at least one fresh benchmark matches REGEX "
        "(repeatable; gates whole benchmark families)",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        print("error: --threshold must be positive", file=sys.stderr)
        return 2

    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    missing_required = []
    for pattern in args.require:
        try:
            required = re.compile(pattern)
        except re.error as e:
            print(f"error: bad --require regex {pattern!r}: {e}",
                  file=sys.stderr)
            return 2
        if not any(required.search(n) for n in fresh):
            missing_required.append(pattern)

    name_filter = re.compile(args.filter) if args.filter else None
    common = [
        n
        for n in baseline
        if n in fresh and (name_filter is None or name_filter.search(n))
    ]

    regressions = []
    if common:
        width = max(len(n) for n in common)
        print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}"
              "  ratio")
        for name in sorted(common):
            ratio = fresh[name] / baseline[name] if baseline[name] > 0 else 1.0
            flag = ""
            if ratio > args.threshold:
                regressions.append((name, ratio))
                flag = "  REGRESSED"
            print(
                f"{name:<{width}}  {baseline[name]:>12.1f}"
                f"  {fresh[name]:>12.1f}  {ratio:5.2f}x{flag}"
            )

    # Benchmarks present in only one file are warnings, never failures:
    # a new bench must be able to land before the baseline is re-recorded,
    # and a retired bench must not block the gate. Only overlapping names
    # can regress.
    only_base = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))
    if only_base:
        print(f"warning: {len(only_base)} benchmark(s) only in baseline "
              "(retired or not run): " + ", ".join(only_base))
    if only_fresh:
        print(f"warning: {len(only_fresh)} benchmark(s) only in fresh run "
              "(new, no baseline yet): " + ", ".join(only_fresh))
    if missing_required:
        print(
            f"\nFAIL: {len(missing_required)} required benchmark "
            "family(ies) absent from the fresh run:"
        )
        for pattern in missing_required:
            print(f"  --require {pattern}: no fresh benchmark matches")
        return 1
    if not common:
        print("warning: no common benchmarks between the two files; "
              "nothing to compare — not treating this as a regression")
        return 0

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.2f}x:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nOK: {len(common)} benchmark(s) within {args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
