// cot_run: command-line driver for the CoT cluster simulation.
//
// Runs any combination of workload x policy x cluster shape and reports
// back-end balance, hit rates, and (with --timed) simulated end-to-end
// latency — the same machinery behind the paper-reproduction benches, as
// a single configurable tool.
//
// Examples:
//   cot_run --policy cot --cache-lines 512 --skew 1.2
//   cot_run --policy cot --elastic --target-imbalance 1.1 --ops 5000000
//   cot_run --policy lru --distribution uniform --timed
//   cot_run --trace my_accesses.txt --policy cot --cache-lines 64
//   cot_run --open-loop --trace-bin t.bin --arrival-rate 40000 \
//       --queue-depth 64 --shed-wait-us 2000 --retry-budget 0.1

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "metrics/event_tracer.h"
#include "metrics/imbalance.h"
#include "sim/end_to_end_sim.h"
#include "sim/open_loop_sim.h"
#include "util/flags.h"
#include "workload/binary_trace.h"
#include "workload/trace.h"

#include "core/policy_factory.h"

namespace {

using namespace cot;

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) std::fprintf(stderr, "short write to '%s'\n", path.c_str());
  return ok;
}

/// Human-readable digest of the structured trace: per-type event counts and
/// the resizer's decision sequence with runs compressed ("double_tracker x3").
void PrintTraceSummary(const std::vector<metrics::TraceEvent>& trace,
                       uint64_t dropped) {
  if (trace.empty() && dropped == 0) return;
  std::map<std::string, uint64_t> counts;
  for (const auto& e : trace) counts[std::string(ToString(e.type))]++;
  std::printf("trace events:      ");
  for (const auto& [type, n] : counts) {
    std::printf(" %s=%llu", type.c_str(),
                static_cast<unsigned long long>(n));
  }
  if (dropped > 0) {
    std::printf("  (dropped %llu)", static_cast<unsigned long long>(dropped));
  }
  std::printf("\n");
  // Decision sequence for client 0 only — every client sees its own stream,
  // and one sequence is what a human wants to eyeball.
  std::string seq;
  std::string last;
  uint64_t run = 0;
  auto flush = [&] {
    if (run == 0) return;
    if (!seq.empty()) seq += " ";
    seq += last;
    if (run > 1) seq += " x" + std::to_string(run);
  };
  for (const auto& e : trace) {
    if (e.type != metrics::TraceEventType::kResizerDecision ||
        e.client != 0) {
      continue;
    }
    const auto& p = std::get<metrics::ResizerDecisionPayload>(e.payload);
    std::string action(p.action);
    if (action == last) {
      ++run;
    } else {
      flush();
      last = action;
      run = 1;
    }
  }
  flush();
  if (!seq.empty()) std::printf("resizer decisions:  %s\n", seq.c_str());
}

/// Writes --metrics-out / --trace-out if requested and prints the trace
/// digest. Returns false on any file-write failure.
bool EmitObservability(const std::string& metrics_path,
                       const std::string& trace_path,
                       const cluster::ExperimentResult& result) {
  bool ok = true;
  if (!metrics_path.empty()) {
    ok = WriteFileOrWarn(metrics_path, result.metrics.ToJson()) && ok;
  }
  if (!trace_path.empty()) {
    std::string jsonl;
    for (const auto& e : result.trace) {
      jsonl += metrics::ToJson(e);
      jsonl += '\n';
    }
    ok = WriteFileOrWarn(trace_path, jsonl) && ok;
  }
  PrintTraceSummary(result.trace, result.trace_dropped);
  return ok;
}

int RunTool(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("policy", "cot",
                  "replacement policy: none|lru|lfu|arc|lru-2|2q|mq|cot");
  flags.AddInt64("cache-lines", 512, "front-end cache lines per client");
  flags.AddInt64("tracker-ratio", 0,
                 "CoT tracker / LRU-2 history ratio (0 = pick by skew)");
  flags.AddString("distribution", "zipfian",
                  "workload: zipfian|uniform|hotspot|scrambled|permuted");
  flags.AddDouble("skew", 0.99, "Zipfian skew parameter");
  flags.AddDouble("read-fraction", 0.998, "fraction of ops that are reads");
  flags.AddInt64("servers", 8, "back-end caching shards");
  flags.AddInt64("clients", 20, "front-end clients");
  flags.AddInt64("keys", 1000000, "key-space size");
  flags.AddInt64("ops", 1000000, "total operations");
  flags.AddInt64("seed", 42, "base RNG seed");
  flags.AddInt64("num-threads", 1,
                 "OS threads driving the clients (1 = serial interleave)");
  flags.AddInt64("batch-size", 1,
                 "issue runs of up to N consecutive reads as one batched "
                 "MultiGet (1 = per-op path)");
  flags.AddString("topology", "ring",
                  "cluster topology: ring|distcache (adds a small cache "
                  "tier with power-of-two-choices routing of hot keys)");
  flags.AddInt64("cache-nodes", 4,
                 "upper-tier cache nodes for --topology distcache (>= 2, "
                 "split over two independent partitions)");
  flags.AddInt64("cache-node-items", 0,
                 "per-cache-node capacity in items (0 = unbounded)");
  flags.AddInt64("distcache-hot-keys", 64,
                 "per-client hot-set size routed to the cache tier");
  flags.AddInt64("distcache-epoch", 1024,
                 "router ops between hot-set/load-estimate refreshes");
  flags.AddBool("elastic", false,
                "enable CoT elastic resizing (policy must be cot)");
  flags.AddDouble("target-imbalance", 1.1, "elastic resizing target I_t");
  flags.AddBool("timed", false,
                "run the end-to-end latency simulation instead of the "
                "logical experiment");
  flags.AddString("trace", "",
                  "replay a trace file (key[,r|u] per line) instead of a "
                  "synthetic workload");
  flags.AddBool("write-through", false,
                "use write-through instead of invalidation on updates");
  flags.AddString("fault-crash", "",
                  "crash windows 'server:start:end[,...]' on each client's "
                  "logical op clock");
  flags.AddString("fault-transient", "",
                  "transient-failure windows 'server:start:end:prob[,...]'");
  flags.AddString("fault-slow", "",
                  "slow-shard windows 'server:start:end:factor[,...]'");
  flags.AddString("gray-slow", "",
                  "gray sustained-slow windows "
                  "'server:start:end:factor:jitter[,...]' — the shard "
                  "stays alive but every request is factor x slower, with "
                  "per-attempt multiplicative jitter in [0,1)");
  flags.AddString("gray-asym", "",
                  "gray asymmetric-slow windows "
                  "'server:start:end:factor:fraction[,...]' — only this "
                  "fraction of clients observes the slowness");
  flags.AddString("gray-stall", "",
                  "gray intermittent-stall windows "
                  "'server:start:end:prob:factor[,...]' — each request "
                  "independently stalls factor x with this probability");
  flags.AddInt64("fault-seed", 0x5eedf001,
                 "seed for transient fault draws");
  flags.AddBool("health", false,
                "enable the gray-failure defense: per-shard streaming "
                "latency quantiles, EWMA health scores, adaptive "
                "deadlines, and lameduck quarantine");
  flags.AddBool("hedge", false,
                "enable budgeted hedged reads on top of --health (implies "
                "--health; gate with --retry-budget)");
  flags.AddDouble("deadline-k", 3.0,
                  "adaptive deadline multiplier: deadline = max(floor, k x "
                  "shard p99)");
  flags.AddDouble("hedge-k", 3.0,
                  "hedge delay multiplier: delay = max(floor, k x cluster "
                  "p50)");
  flags.AddDouble("lameduck-weight", 0.25,
                  "p2c routing weight of a lameduck cache node (distcache "
                  "topology)");
  flags.AddDouble("hedge-delay-us", 1500.0,
                  "open-loop hedge threshold: hedge a queued read whose "
                  "projected completion exceeds this (with --open-loop "
                  "--hedge)");
  flags.AddInt64("fault-retries", 2,
                 "max retries after a failed backend request");
  flags.AddInt64("fault-breaker-threshold", 3,
                 "consecutive failures before a shard's circuit breaker "
                 "opens");
  flags.AddInt64("fault-breaker-cooldown", 64,
                 "client ops an open breaker waits before a half-open probe");
  flags.AddBool("fault-no-cold-recovery", false,
                "disable the recovery generation bump (demonstrates the "
                "stale-read hazard; unsafe)");
  flags.AddString("churn", "",
                  "topology mutations 'add:AT | remove:SERVER:AT | "
                  "rejoin:SERVER:AT' (comma-separated) applied when every "
                  "client reaches AT ops");
  flags.AddInt64("churn-chaos", 0,
                 "generate a seeded chaos plan with this many topology "
                 "mutations (mutually exclusive with --churn)");
  flags.AddInt64("churn-faults", 4,
                 "fault windows in the generated chaos plan");
  flags.AddInt64("churn-seed", 1, "seed for the chaos plan generator");
  flags.AddInt64("churn-warmup", 0,
                 "no chaos events before this per-client op count");
  flags.AddBool("open-loop", false,
                "replay a binary trace (--trace-bin) under an arrival-rate "
                "driven open-loop schedule instead of the closed-loop "
                "drivers");
  flags.AddString("trace-bin", "",
                  "mmap-able binary trace (cot_trace_gen --binary) for "
                  "--open-loop");
  flags.AddDouble("arrival-rate", 10000.0,
                  "open-loop aggregate offered load, ops per second of "
                  "virtual time");
  flags.AddString("arrival", "poisson",
                  "open-loop arrival process: poisson|uniform");
  flags.AddInt64("logical-clients", 256,
                 "open-loop logical front-end clients multiplexed over "
                 "--num-threads OS threads");
  flags.AddInt64("queue-depth", 0,
                 "per-shard serving-queue depth bound (0 = unbounded, "
                 "i.e. no defense)");
  flags.AddInt64("shed-wait-us", 0,
                 "deadline admission: shed a request whose queueing delay "
                 "would exceed this (0 = off)");
  flags.AddDouble("pressure-fraction", 0.75,
                  "queue-depth fraction beyond which invalidations bypass "
                  "the data queue (tier-1 degradation)");
  flags.AddInt64("deadline-us", 5000,
                 "end-to-end SLO: completions within this count as goodput");
  flags.AddDouble("retry-budget", 0.0,
                  "retry-budget token ratio funding storage failovers of "
                  "shed reads (0 = off)");
  flags.AddDouble("retry-budget-burst", 16.0, "retry-budget bucket cap");
  flags.AddString("metrics-out", "",
                  "write run counters/gauges/latency histograms as JSON to "
                  "this file");
  flags.AddString("trace-out", "",
                  "record structured events (resizer decisions, breaker "
                  "transitions, fault activations, ...) and write them as "
                  "JSONL to this file");
  flags.AddInt64("trace-capacity", 65536,
                 "per-client event ring-buffer slots (with --trace-out)");

  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("cot_run — CoT cluster simulation driver\n%s",
                flags.Help().c_str());
    return 0;
  }

  cluster::ExperimentConfig config;
  config.num_servers = static_cast<uint32_t>(flags.GetInt64("servers"));
  config.num_clients = static_cast<uint32_t>(flags.GetInt64("clients"));
  config.key_space = static_cast<uint64_t>(flags.GetInt64("keys"));
  config.total_ops = static_cast<uint64_t>(flags.GetInt64("ops"));
  config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  config.num_threads = static_cast<uint32_t>(flags.GetInt64("num-threads"));
  config.batch_size = static_cast<uint32_t>(flags.GetInt64("batch-size"));
  {
    auto topo = cluster::ParseTopology(flags.GetString("topology"));
    if (!topo.ok()) {
      std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
      return 2;
    }
    config.topology = *topo;
  }
  config.cache_nodes = static_cast<uint32_t>(flags.GetInt64("cache-nodes"));
  config.cache_node_items =
      static_cast<size_t>(flags.GetInt64("cache-node-items"));
  config.distcache_hot_keys =
      static_cast<size_t>(flags.GetInt64("distcache-hot-keys"));
  config.distcache_epoch_ops =
      static_cast<uint64_t>(flags.GetInt64("distcache-epoch"));

  {
    auto faults = cluster::ParseFaultSchedule(
        flags.GetString("fault-crash"), flags.GetString("fault-transient"),
        flags.GetString("fault-slow"), flags.GetString("gray-slow"),
        flags.GetString("gray-asym"), flags.GetString("gray-stall"),
        static_cast<uint64_t>(flags.GetInt64("fault-seed")));
    if (!faults.ok()) {
      std::fprintf(stderr, "%s\n", faults.status().ToString().c_str());
      return 2;
    }
    config.faults = std::move(faults).value();
  }
  config.failure_policy.max_retries =
      static_cast<uint32_t>(flags.GetInt64("fault-retries"));
  config.failure_policy.breaker_failure_threshold =
      static_cast<uint32_t>(flags.GetInt64("fault-breaker-threshold"));
  config.failure_policy.breaker_cooldown_ops =
      static_cast<uint64_t>(flags.GetInt64("fault-breaker-cooldown"));
  config.failure_policy.recover_cold = !flags.GetBool("fault-no-cold-recovery");
  config.failure_policy.retry_budget_ratio = flags.GetDouble("retry-budget");
  config.failure_policy.retry_budget_burst =
      flags.GetDouble("retry-budget-burst");
  config.failure_policy.hedging_enabled = flags.GetBool("hedge");
  config.failure_policy.health_enabled =
      flags.GetBool("health") || config.failure_policy.hedging_enabled;
  config.failure_policy.health.deadline_k = flags.GetDouble("deadline-k");
  config.failure_policy.health.hedge_k = flags.GetDouble("hedge-k");
  config.failure_policy.lameduck_weight = flags.GetDouble("lameduck-weight");

  const std::string& churn_spec = flags.GetString("churn");
  int64_t chaos_events = flags.GetInt64("churn-chaos");
  if (!churn_spec.empty() && chaos_events > 0) {
    std::fprintf(stderr,
                 "--churn and --churn-chaos are mutually exclusive\n");
    return 2;
  }
  if (!churn_spec.empty()) {
    auto churn = cluster::ParseChurnSchedule(churn_spec);
    if (!churn.ok()) {
      std::fprintf(stderr, "%s\n", churn.status().ToString().c_str());
      return 2;
    }
    config.churn = std::move(churn).value();
  } else if (chaos_events > 0) {
    cluster::ChaosOptions chaos;
    chaos.seed = static_cast<uint64_t>(flags.GetInt64("churn-seed"));
    chaos.initial_servers = config.num_servers;
    chaos.horizon_ops =
        config.total_ops /
        std::max<uint64_t>(1, static_cast<uint64_t>(config.num_clients));
    chaos.warmup_ops = static_cast<uint64_t>(flags.GetInt64("churn-warmup"));
    chaos.churn_events = static_cast<uint32_t>(chaos_events);
    chaos.fault_events =
        static_cast<uint32_t>(flags.GetInt64("churn-faults"));
    cluster::ChaosPlan plan = cluster::MakeChaosPlan(chaos);
    config.churn = std::move(plan.churn);
    // Compose with any explicit fault windows; an untouched --fault-seed
    // defers to the plan's derived seed so one --churn-seed pins the run.
    if (config.faults.empty()) {
      config.faults = std::move(plan.faults);
    } else {
      config.faults.events.insert(config.faults.events.end(),
                                  plan.faults.events.begin(),
                                  plan.faults.events.end());
    }
  }
  if (!config.churn.empty()) {
    Status cs = config.churn.Validate(config.num_servers);
    if (!cs.ok()) {
      std::fprintf(stderr, "%s\n", cs.ToString().c_str());
      return 2;
    }
  }

  // One-line digest of the effective fault plan (after chaos composition),
  // so a run's failure conditions are visible in its log without decoding
  // the specs: per-mode window counts, the targeted shard set, the op-clock
  // span covered, the draw seed, and which defenses are armed.
  if (!config.faults.empty()) {
    uint64_t crash = 0, transient = 0, slow = 0, gray = 0;
    uint64_t span_lo = UINT64_MAX, span_hi = 0;
    std::vector<cluster::ServerId> shards;
    for (const cluster::FaultEvent& e : config.faults.events) {
      switch (e.type) {
        case cluster::FaultType::kCrash: ++crash; break;
        case cluster::FaultType::kTransient: ++transient; break;
        case cluster::FaultType::kSlow: ++slow; break;
        case cluster::FaultType::kGray: ++gray; break;
      }
      span_lo = std::min(span_lo, e.start_op);
      span_hi = std::max(span_hi, e.end_op);
      if (std::find(shards.begin(), shards.end(), e.server) == shards.end()) {
        shards.push_back(e.server);
      }
    }
    std::sort(shards.begin(), shards.end());
    std::string shard_list;
    for (cluster::ServerId id : shards) {
      if (!shard_list.empty()) shard_list += ",";
      shard_list += std::to_string(id);
    }
    const char* defense =
        config.failure_policy.hedging_enabled
            ? "health+hedge"
            : (config.failure_policy.health_enabled ? "health" : "none");
    std::printf(
        "fault plan: windows crash=%llu transient=%llu slow=%llu gray=%llu"
        "  shards={%s}  ops=[%llu,%llu)  seed=0x%llx  defense=%s\n",
        static_cast<unsigned long long>(crash),
        static_cast<unsigned long long>(transient),
        static_cast<unsigned long long>(slow),
        static_cast<unsigned long long>(gray), shard_list.c_str(),
        static_cast<unsigned long long>(span_lo),
        static_cast<unsigned long long>(span_hi),
        static_cast<unsigned long long>(config.faults.seed), defense);
  }

  const std::string& metrics_out = flags.GetString("metrics-out");
  const std::string& trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) {
    config.trace_capacity =
        static_cast<size_t>(flags.GetInt64("trace-capacity"));
  }

  workload::PhaseSpec phase;
  phase.skew = flags.GetDouble("skew");
  phase.read_fraction = flags.GetDouble("read-fraction");
  const std::string& dist = flags.GetString("distribution");
  if (dist == "zipfian") {
    phase.distribution = workload::Distribution::kZipfian;
  } else if (dist == "uniform") {
    phase.distribution = workload::Distribution::kUniform;
  } else if (dist == "hotspot") {
    phase.distribution = workload::Distribution::kHotspot;
  } else if (dist == "scrambled") {
    phase.distribution = workload::Distribution::kScrambledZipfian;
  } else if (dist == "permuted") {
    phase.distribution = workload::Distribution::kPermutedZipfian;
  } else {
    std::fprintf(stderr, "unknown --distribution '%s'\n", dist.c_str());
    return 2;
  }
  config.phases = {phase};

  // Trace replay: run the trace's ops through one client per the usual
  // protocol instead of a synthetic stream.
  const std::string& trace_path = flags.GetString("trace");
  std::unique_ptr<workload::Trace> trace;
  if (!trace_path.empty()) {
    auto loaded = workload::Trace::Load(trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::make_unique<workload::Trace>(std::move(loaded).value());
    config.key_space = std::max<uint64_t>(1, trace->KeySpaceSize());
    std::printf("trace: %zu ops over %llu keys\n", trace->size(),
                static_cast<unsigned long long>(config.key_space));
  }

  if (config.topology == cluster::Topology::kDistCache &&
      (flags.GetBool("timed") || flags.GetBool("open-loop") ||
       trace != nullptr)) {
    std::fprintf(stderr,
                 "--topology distcache runs the logical experiment only "
                 "(incompatible with --timed, --open-loop, --trace)\n");
    return 2;
  }

  const std::string& policy = flags.GetString("policy");
  size_t lines = static_cast<size_t>(flags.GetInt64("cache-lines"));
  size_t ratio = static_cast<size_t>(flags.GetInt64("tracker-ratio"));
  if (ratio == 0) {
    // The paper's skew-dependent defaults (Section 5.2).
    ratio = phase.skew < 0.95 ? 16 : (phase.skew < 1.1 ? 8 : 4);
  }
  bool elastic = flags.GetBool("elastic");
  if (elastic && policy != "cot") {
    std::fprintf(stderr, "--elastic requires --policy cot\n");
    return 2;
  }
  {
    // Validate the policy name up front for a friendly error.
    auto probe = core::MakePolicy(policy, 1, ratio);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 2;
    }
  }
  auto factory = [&](uint32_t) {
    return std::move(core::MakePolicy(policy, elastic ? 2 : lines, ratio))
        .value();
  };
  core::ResizerConfig resizer;
  resizer.target_imbalance = flags.GetDouble("target-imbalance");

  if (flags.GetBool("open-loop")) {
    const std::string& bin_path = flags.GetString("trace-bin");
    if (bin_path.empty()) {
      std::fprintf(stderr, "--open-loop requires --trace-bin\n");
      return 2;
    }
    auto view = workload::BinaryTraceView::Open(bin_path);
    if (!view.ok()) {
      std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
      return 1;
    }
    auto arrival = workload::ParseArrivalProcess(flags.GetString("arrival"));
    if (!arrival.ok()) {
      std::fprintf(stderr, "%s\n", arrival.status().ToString().c_str());
      return 2;
    }
    sim::OpenLoopConfig ol;
    ol.num_servers = config.num_servers;
    ol.logical_clients =
        static_cast<uint32_t>(flags.GetInt64("logical-clients"));
    ol.num_threads = config.num_threads;
    // --ops caps the replay; the sim clamps to the trace length.
    ol.max_ops = config.total_ops;
    ol.arrival_rate_per_sec = flags.GetDouble("arrival-rate");
    ol.arrival = *arrival;
    ol.seed = config.seed;
    ol.deadline_us = static_cast<uint64_t>(flags.GetInt64("deadline-us"));
    ol.overload.max_queue_depth =
        static_cast<uint32_t>(flags.GetInt64("queue-depth"));
    ol.overload.deadline_us =
        static_cast<uint64_t>(flags.GetInt64("shed-wait-us"));
    ol.overload.pressure_fraction = flags.GetDouble("pressure-fraction");
    ol.retry_budget_ratio = flags.GetDouble("retry-budget");
    ol.retry_budget_burst = flags.GetDouble("retry-budget-burst");
    ol.hedging = flags.GetBool("hedge");
    ol.hedge_delay_us = flags.GetDouble("hedge-delay-us");
    ol.trace_capacity = trace_out.empty() ? 0 : config.trace_capacity;
    auto result = sim::RunOpenLoop(ol, *view, factory, sim::LatencyModel{});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("trace: %llu ops over %llu keys (%s)\n",
                static_cast<unsigned long long>(view->size()),
                static_cast<unsigned long long>(view->key_space()),
                bin_path.c_str());
    std::printf("offered:            %llu ops at %.0f/s (%s arrivals, "
                "achieved %.0f/s)\n",
                static_cast<unsigned long long>(result->offered),
                ol.arrival_rate_per_sec,
                workload::ArrivalProcessName(ol.arrival).c_str(),
                result->offered_rate_per_sec);
    std::printf("completed:          %llu (%.0f/s)   goodput: %llu "
                "(%.0f/s within %llu us)\n",
                static_cast<unsigned long long>(result->completed),
                result->completed_rate_per_sec,
                static_cast<unsigned long long>(result->goodput),
                result->goodput_rate_per_sec,
                static_cast<unsigned long long>(ol.deadline_us));
    std::printf("shed:               %llu (queue_full %llu  deadline %llu  "
                "storage %llu  budget-denied %llu)\n",
                static_cast<unsigned long long>(result->shed),
                static_cast<unsigned long long>(result->shed_queue_full),
                static_cast<unsigned long long>(result->shed_deadline),
                static_cast<unsigned long long>(result->shed_storage),
                static_cast<unsigned long long>(result->retries_suppressed));
    std::printf("degraded failovers: %llu   invalidation bypasses: %llu\n",
                static_cast<unsigned long long>(result->degraded_failovers),
                static_cast<unsigned long long>(result->invalidation_bypass));
    if (ol.hedging) {
      std::printf("hedges:             %llu (won %llu  lost %llu  "
                  "suppressed %llu)\n",
                  static_cast<unsigned long long>(result->hedges_sent),
                  static_cast<unsigned long long>(result->hedges_won),
                  static_cast<unsigned long long>(result->hedges_lost),
                  static_cast<unsigned long long>(result->hedges_suppressed));
      if (result->hedges_sent != result->hedges_won + result->hedges_lost +
                                     result->hedges_suppressed) {
        std::fprintf(
            stderr,
            "IDENTITY VIOLATION: hedges_sent %llu != won %llu + lost %llu "
            "+ suppressed %llu\n",
            static_cast<unsigned long long>(result->hedges_sent),
            static_cast<unsigned long long>(result->hedges_won),
            static_cast<unsigned long long>(result->hedges_lost),
            static_cast<unsigned long long>(result->hedges_suppressed));
        return 3;
      }
    }
    std::printf("local hits:         %llu\n",
                static_cast<unsigned long long>(result->local_hits));
    std::printf("mean latency:       %.1f us   makespan: %.2f ms\n",
                result->mean_latency_us, result->makespan_us / 1000.0);
    for (const char* path :
         {"latency_us/local_hit", "latency_us/backend", "latency_us/storage",
          "latency_us/degraded", "latency_us/update",
          "queue_wait_us/backend"}) {
      const metrics::Histogram& h = result->metrics.histogram(path);
      if (h.count() == 0) continue;
      std::printf("%-22s p50 %.0f  p99 %.0f  p999 %.0f  (n=%llu)\n", path,
                  h.Median(), h.P99(), h.P999(),
                  static_cast<unsigned long long>(h.count()));
    }
    // The accounting identity is a hard invariant of the replayer: every
    // offered op meets exactly one fate. A violation is a bug, not a
    // report — fail loudly so CI smoke runs catch it.
    if (result->offered !=
        result->completed + result->shed + result->failed) {
      std::fprintf(stderr,
                   "IDENTITY VIOLATION: offered %llu != completed %llu + "
                   "shed %llu + failed %llu\n",
                   static_cast<unsigned long long>(result->offered),
                   static_cast<unsigned long long>(result->completed),
                   static_cast<unsigned long long>(result->shed),
                   static_cast<unsigned long long>(result->failed));
      return 3;
    }
    std::printf("identity:           offered %llu = completed %llu + shed "
                "%llu + failed %llu\n",
                static_cast<unsigned long long>(result->offered),
                static_cast<unsigned long long>(result->completed),
                static_cast<unsigned long long>(result->shed),
                static_cast<unsigned long long>(result->failed));
    bool ok = true;
    if (!metrics_out.empty()) {
      ok = WriteFileOrWarn(metrics_out, result->metrics.ToJson()) && ok;
    }
    if (!trace_out.empty()) {
      std::string jsonl;
      for (const auto& e : result->trace) {
        jsonl += metrics::ToJson(e);
        jsonl += '\n';
      }
      ok = WriteFileOrWarn(trace_out, jsonl) && ok;
    }
    PrintTraceSummary(result->trace, 0);
    return ok ? 0 : 1;
  }

  auto print_fault_summary = [&](const cluster::FrontendStats& a) {
    if (config.faults.empty()) return;
    std::printf(
        "faults: failed %llu  retries %llu (suppressed %llu)  failovers "
        "%llu  degraded %llu\n",
        static_cast<unsigned long long>(a.failed_requests),
        static_cast<unsigned long long>(a.retries),
        static_cast<unsigned long long>(a.retries_suppressed),
        static_cast<unsigned long long>(a.failovers),
        static_cast<unsigned long long>(a.degraded_ops));
    std::printf(
        "        lost invalidations %llu  forced restarts %llu  cold "
        "restarts %llu\n",
        static_cast<unsigned long long>(a.lost_invalidations),
        static_cast<unsigned long long>(a.forced_restarts),
        static_cast<unsigned long long>(a.cold_restarts));
    std::printf(
        "        breaker trips %llu  slow ops %llu  unavailable "
        "shard-epochs %llu\n",
        static_cast<unsigned long long>(a.breaker_trips),
        static_cast<unsigned long long>(a.slow_ops),
        static_cast<unsigned long long>(a.unavailable_shard_epochs));
    if (config.failure_policy.health_enabled) {
      std::printf(
          "        gray ops %llu  hedges %llu (won %llu  lost %llu  "
          "suppressed %llu)\n",
          static_cast<unsigned long long>(a.gray_ops),
          static_cast<unsigned long long>(a.hedges_sent),
          static_cast<unsigned long long>(a.hedges_won),
          static_cast<unsigned long long>(a.hedges_lost),
          static_cast<unsigned long long>(a.hedges_suppressed));
      std::printf(
          "        lameduck entries %llu  exits %llu  bypasses %llu  "
          "probes %llu\n",
          static_cast<unsigned long long>(a.lameduck_entries),
          static_cast<unsigned long long>(a.lameduck_exits),
          static_cast<unsigned long long>(a.lameduck_bypasses),
          static_cast<unsigned long long>(a.lameduck_probes));
    }
  };

  auto print_churn_summary = [&](const cluster::ExperimentResult& r) {
    if (config.churn.empty()) return;
    std::printf(
        "churn: changes %llu  keys migrated %llu  epoch %llu  active "
        "servers %u\n",
        static_cast<unsigned long long>(r.topology_changes),
        static_cast<unsigned long long>(r.keys_migrated),
        static_cast<unsigned long long>(r.routing_epoch),
        r.final_active_servers);
    std::printf(
        "       epoch mismatches %llu  route refreshes %llu  shard rejects "
        "%llu\n",
        static_cast<unsigned long long>(r.aggregate.epoch_mismatches),
        static_cast<unsigned long long>(r.aggregate.route_refreshes),
        static_cast<unsigned long long>(r.epoch_rejects));
  };

  std::unique_ptr<cluster::FaultInjector> trace_injector;
  if (trace != nullptr) {
    if (!config.churn.empty()) {
      std::fprintf(stderr, "--churn* is not supported in --trace mode\n");
      return 2;
    }
    // Trace mode: one client, explicit drive.
    cluster::CacheCluster cluster(config.num_servers, config.key_space);
    cluster::FrontendClient client(&cluster, factory(0));
    if (flags.GetBool("write-through")) {
      client.SetWritePolicy(
          cluster::FrontendClient::WritePolicy::kWriteThrough);
    }
    if (!config.faults.empty()) {
      Status fs = config.faults.Validate(config.num_servers);
      if (!fs.ok()) {
        std::fprintf(stderr, "%s\n", fs.ToString().c_str());
        return 2;
      }
      trace_injector =
          std::make_unique<cluster::FaultInjector>(config.faults);
      client.SetFaultInjector(trace_injector.get(), 0,
                              config.failure_policy);
    }
    std::unique_ptr<metrics::EventTracer> tracer;
    if (config.trace_capacity > 0) {
      tracer = std::make_unique<metrics::EventTracer>(config.trace_capacity,
                                                      /*client=*/0);
      client.SetTracer(tracer.get());
    }
    if (elastic) {
      Status es = client.EnableElasticResizing(resizer);
      if (!es.ok()) {
        std::fprintf(stderr, "%s\n", es.ToString().c_str());
        return 1;
      }
    }
    for (const workload::Op& op : trace->ops()) client.Apply(op);
    auto loads = cluster.PerServerLookups();
    std::printf("local hit rate:     %.2f%%\n",
                client.stats().LocalHitRate() * 100.0);
    std::printf("backend lookups:    %llu\n",
                static_cast<unsigned long long>(metrics::TotalLoad(loads)));
    std::printf("imbalance (max/min): %.3f   jain: %.4f\n",
                metrics::LoadImbalance(loads),
                metrics::JainFairnessIndex(loads));
    print_fault_summary(client.stats());
    // Fold the single-client run into an ExperimentResult so the export
    // format matches the experiment/sim paths exactly.
    cluster::ExperimentResult replay;
    replay.per_server_lookups = loads;
    replay.imbalance = metrics::LoadImbalance(loads);
    replay.total_backend_lookups = metrics::TotalLoad(loads);
    replay.per_client.push_back(client.stats());
    replay.aggregate.Add(client.stats());
    replay.local_hit_rate = client.stats().LocalHitRate();
    if (tracer != nullptr) {
      replay.trace = metrics::EventTracer::Merge({tracer.get()});
      replay.trace_dropped = tracer->dropped();
    }
    cluster::ExportMetrics(&replay);
    if (!EmitObservability(metrics_out, trace_out, replay)) return 1;
    return 0;
  }

  if (flags.GetBool("timed")) {
    auto result = sim::RunEndToEnd(config, factory, sim::LatencyModel{},
                                   elastic ? &resizer : nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("makespan:           %.2f ms\n",
                result->makespan_us / 1000.0);
    std::printf("mean latency:       %.1f us   p95: %.1f us   p99: %.1f "
                "us\n",
                result->mean_latency_us, result->latency_us.P95(),
                result->latency_us.P99());
    std::printf("max shard backlog:  %.1f requests\n", result->max_backlog);
    std::printf("local hit rate:     %.2f%%\n",
                result->logical.local_hit_rate * 100.0);
    std::printf("imbalance (max/min): %.3f   jain: %.4f\n",
                result->logical.imbalance,
                metrics::JainFairnessIndex(
                    result->logical.per_server_lookups));
    print_fault_summary(result->logical.aggregate);
    print_churn_summary(result->logical);
    if (!EmitObservability(metrics_out, trace_out, result->logical)) return 1;
    return 0;
  }

  auto result =
      cluster::RunExperiment(config, factory, elastic ? &resizer : nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("local hit rate:     %.2f%%\n", result->local_hit_rate * 100.0);
  std::printf("backend lookups:    %llu (of %llu ops)\n",
              static_cast<unsigned long long>(result->total_backend_lookups),
              static_cast<unsigned long long>(config.total_ops));
  std::printf("imbalance (max/min): %.3f   jain: %.4f\n", result->imbalance,
              metrics::JainFairnessIndex(result->per_server_lookups));
  std::printf("per-server load:   ");
  for (uint64_t load : result->per_server_lookups) {
    std::printf(" %llu", static_cast<unsigned long long>(load));
  }
  std::printf("\n");
  if (config.topology == cluster::Topology::kDistCache) {
    uint64_t tier_load = 0;
    for (uint64_t n : result->cache_node_lookups) tier_load += n;
    std::printf("cache-tier load:   ");
    for (uint64_t n : result->cache_node_lookups) {
      std::printf(" %llu", static_cast<unsigned long long>(n));
    }
    uint64_t routed = tier_load + result->total_backend_lookups;
    std::printf("  (%zu nodes, %.1f%% of routed lookups)\n",
                result->cache_node_ids.size(),
                routed == 0 ? 0.0
                            : 100.0 * static_cast<double>(tier_load) /
                                  static_cast<double>(routed));
  }
  print_fault_summary(result->aggregate);
  print_churn_summary(*result);
  if (!config.faults.empty()) {
    std::printf("unavailable ops:   ");
    for (uint64_t n : result->unavailable_ops_per_server) {
      std::printf(" %llu", static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
  if (!EmitObservability(metrics_out, trace_out, *result)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunTool(argc, argv); }
