// social_feed: the paper's motivating deployment — front-end servers in
// different regions see different local trends (#miami vs #ny), so a "one
// size fits all" front-end cache wastes memory in one region and fails to
// balance in another. Each front-end here runs CoT with elastic resizing
// against a shared 8-shard caching tier; every region converges to its
// own cache size with no coordination.
//
// Build & run:  ./build/examples/social_feed

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "workload/op_stream.h"

namespace {

struct Region {
  const char* name;
  double skew;          // how "trendy" the region's traffic is
  uint64_t permute_seed;  // different regions trend on different keys
};

}  // namespace

int main() {
  constexpr uint64_t kKeySpace = 200000;
  constexpr uint64_t kOpsPerRegion = 3000000;

  cot::cluster::CacheCluster cluster(/*num_servers=*/8, kKeySpace);

  const Region regions[] = {
      {"new-york", 1.2, 11},   // heavy local trends
      {"green-bay", 0.9, 22},  // mild skew
      {"suburbs", 0.0, 33},    // no trends at all (uniform)
  };

  std::vector<std::unique_ptr<cot::cluster::FrontendClient>> clients;
  std::vector<cot::workload::OpStream> streams;
  for (const Region& region : regions) {
    // Every region starts from the same tiny configuration...
    auto client = std::make_unique<cot::cluster::FrontendClient>(
        &cluster, std::make_unique<cot::core::CotCache>(2, 4));
    cot::core::ResizerConfig config;
    config.target_imbalance = 1.1;  // the only operator input
    config.warmup_epochs = 2;
    if (!client->EnableElasticResizing(config).ok()) return 1;
    clients.push_back(std::move(client));

    cot::workload::PhaseSpec phase;
    if (region.skew == 0.0) {
      phase.distribution = cot::workload::Distribution::kUniform;
    } else {
      // Permuted so each region's hot set is a different slice of keys.
      phase.distribution = cot::workload::Distribution::kPermutedZipfian;
      phase.skew = region.skew;
      phase.permute_seed = region.permute_seed;
    }
    phase.read_fraction = 0.998;
    phase.num_ops = kOpsPerRegion;
    auto stream = cot::workload::OpStream::Create(kKeySpace, {phase},
                                                  region.permute_seed);
    if (!stream.ok()) return 1;
    streams.push_back(std::move(stream).value());
  }

  // Regions serve traffic concurrently (round-robin interleave).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < clients.size(); ++i) {
      if (streams[i].Done()) continue;
      clients[i]->Apply(streams[i].Next());
      progressed = true;
    }
  }

  std::printf("%-10s %6s %12s %14s %12s %10s\n", "region", "skew",
              "cache-lines", "tracker-lines", "hit-rate", "I_c");
  for (size_t i = 0; i < clients.size(); ++i) {
    auto* cache =
        dynamic_cast<cot::core::CotCache*>(clients[i]->local_cache());
    const auto& history = clients[i]->resizer()->history();
    double ic = history.empty() ? 1.0 : history.back().smoothed_imbalance;
    std::printf("%-10s %6.2f %12zu %14zu %11.1f%% %10.2f\n",
                regions[i].name, regions[i].skew, cache->capacity(),
                cache->tracker_capacity(),
                clients[i]->stats().LocalHitRate() * 100.0, ic);
  }
  std::printf("\nEach region sized itself: the trend-heavy region grew a "
              "real cache, the mild one stayed small,\nand the uniform "
              "region kept (near) none — same I_t, no coordination, no "
              "shared state.\n");
  return 0;
}
