// multi_tenant_pipeline: the paper's second deployment story — several
// applications share one caching tier, each interested in a different
// partition of the data with a different access pattern. Front-ends
// belonging to different applications independently settle on different
// cache footprints, and the shared back-end stays balanced.
//
//   tenant A  "recommendations"  — scans its partition uniformly
//   tenant B  "timeline"         — heavy hitters (Zipf 1.2) in its partition
//   tenant C  "ads"              — hotspot: 1% of its keys take 90% of ops
//
// Build & run:  ./build/examples/multi_tenant_pipeline

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "metrics/imbalance.h"
#include "workload/op_stream.h"

int main() {
  constexpr uint64_t kKeySpace = 300000;  // three 100k partitions
  constexpr uint64_t kOpsPerTenant = 2500000;
  cot::cluster::CacheCluster cluster(/*num_servers=*/8, kKeySpace);

  struct Tenant {
    const char* name;
    cot::workload::PhaseSpec phase;
  };
  std::vector<Tenant> tenants;
  {
    cot::workload::PhaseSpec scans;
    scans.distribution = cot::workload::Distribution::kUniform;
    scans.read_fraction = 1.0;
    scans.num_ops = kOpsPerTenant;
    tenants.push_back({"recommendations", scans});

    cot::workload::PhaseSpec timeline;
    timeline.distribution = cot::workload::Distribution::kPermutedZipfian;
    timeline.skew = 1.2;
    timeline.permute_seed = 7;
    timeline.read_fraction = 0.998;
    timeline.num_ops = kOpsPerTenant;
    tenants.push_back({"timeline", timeline});

    cot::workload::PhaseSpec ads;
    ads.distribution = cot::workload::Distribution::kHotspot;
    ads.hot_set_fraction = 0.01;
    ads.hot_opn_fraction = 0.9;
    ads.read_fraction = 0.995;
    ads.num_ops = kOpsPerTenant;
    tenants.push_back({"ads", ads});
  }

  std::vector<std::unique_ptr<cot::cluster::FrontendClient>> clients;
  std::vector<cot::workload::OpStream> streams;
  for (size_t i = 0; i < tenants.size(); ++i) {
    auto client = std::make_unique<cot::cluster::FrontendClient>(
        &cluster, std::make_unique<cot::core::CotCache>(2, 4));
    cot::core::ResizerConfig config;
    config.target_imbalance = 1.1;
    config.warmup_epochs = 2;
    if (!client->EnableElasticResizing(config).ok()) return 1;
    clients.push_back(std::move(client));
    auto stream = cot::workload::OpStream::Create(
        kKeySpace, {tenants[i].phase}, /*seed=*/1000 + i);
    if (!stream.ok()) return 1;
    streams.push_back(std::move(stream).value());
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < clients.size(); ++i) {
      if (streams[i].Done()) continue;
      clients[i]->Apply(streams[i].Next());
      progressed = true;
    }
  }

  std::printf("%-16s %12s %12s %10s\n", "tenant", "cache-lines",
              "hit-rate", "I_c");
  for (size_t i = 0; i < clients.size(); ++i) {
    auto* cache =
        dynamic_cast<cot::core::CotCache*>(clients[i]->local_cache());
    const auto& history = clients[i]->resizer()->history();
    double ic = history.empty() ? 1.0 : history.back().smoothed_imbalance;
    std::printf("%-16s %12zu %11.1f%% %10.2f\n", tenants[i].name,
                cache->capacity(),
                clients[i]->stats().LocalHitRate() * 100.0, ic);
  }
  double shared_imbalance =
      cot::metrics::LoadImbalance(cluster.PerServerLookups());
  std::printf("\nshared back-end load-imbalance across all tenants: %.2f\n",
              shared_imbalance);
  std::printf("Skewed tenants grew caches to protect the shared tier; the "
              "scan tenant stayed near zero.\n");
  return 0;
}
