// flash_crowd: trend turnover and half-life decay (Algorithm 3, Case 2).
//
// A tiny front-end cache converges on one era's heavy hitters; those
// residents accumulate enormous hotness. Then the crowd moves to a
// completely different hot set overnight. The new keys' *rate* is high
// but their *accumulated* hotness starts at zero, so with a tiny cache
// they cannot beat `h_min` for a long time — yesterday's idols squat in
// the cache. CoT detects this (cached keys stop achieving alpha_t while
// tracked-but-not-cached keys do) and fires half-life decay, halving all
// hotness until current rates, not ancient glory, decide who is cached.
//
// We run the same scenario twice — decay enabled vs disabled — and
// compare how fast the hit rate recovers. (The resizer is pinned to the
// tiny cache size and fed a balanced I_c so the quality signals, not
// growth, drive the story.)
//
// Build & run:  ./build/examples/flash_crowd

#include <cstdio>
#include <memory>

#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace {

constexpr uint64_t kKeySpace = 100000;
constexpr size_t kCacheLines = 4;
constexpr size_t kTrackerLines = 64;
constexpr uint64_t kEpoch = 5000;

struct Scenario {
  cot::core::CotCache cache;
  cot::core::ElasticResizer resizer;

  explicit Scenario(bool enable_decay)
      : cache(kCacheLines, kTrackerLines),
        resizer(&cache, MakeConfig(enable_decay)) {}

  static cot::core::ResizerConfig MakeConfig(bool enable_decay) {
    cot::core::ResizerConfig config;
    config.enable_decay = enable_decay;
    config.enable_ratio_discovery = false;
    config.warmup_epochs = 0;
    config.initial_epoch_size = kEpoch;
    // Pin the size: this example isolates the decay mechanism.
    config.max_cache_capacity = kCacheLines;
    config.min_cache_capacity = kCacheLines;
    return config;
  }

  // Drives `ops` accesses of `gen`, closing epochs with a balanced I_c
  // (other front-ends keep the backend balanced in this story). Returns
  // the hit rate over the driven window.
  double Drive(cot::workload::ZipfianGenerator& gen, cot::Rng& rng,
               uint64_t ops) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < ops; ++i) {
      cot::cache::Key k = gen.Next(rng);
      if (cache.Get(k).has_value()) {
        ++hits;
      } else {
        cache.Put(k, k);
      }
      resizer.OnAccess();
      if (resizer.EpochComplete()) resizer.EndEpoch(1.0);
    }
    return static_cast<double>(hits) / static_cast<double>(ops);
  }

  size_t DecayEvents() const {
    size_t n = 0;
    for (const auto& r : resizer.history()) {
      if (r.action == cot::core::ResizeAction::kDecay) ++n;
    }
    return n;
  }
};

}  // namespace

int main() {
  // Two eras with the same skew but disjoint-looking hot sets: the era-2
  // generator reverses the rank order so era-1 idols go completely cold.
  cot::workload::ZipfianGenerator era1(kKeySpace, 1.2);

  std::printf("cache: %zu lines, tracker: %zu — a deliberately tiny "
              "front-end\n\n", kCacheLines, kTrackerLines);
  std::printf("%-14s %12s %14s %14s %8s\n", "variant", "era-1 rate",
              "era-2 @100k", "era-2 @400k", "case2-events");

  for (bool enable_decay : {true, false}) {
    Scenario scenario(enable_decay);
    cot::Rng rng(7);

    double era1_rate = scenario.Drive(era1, rng, 1000000);

    // Era 2: hottest keys are now at the *end* of the id space.
    class Reversed : public cot::workload::KeyGenerator {
     public:
      explicit Reversed(uint64_t n) : inner_(n, 1.2), n_(n) {}
      cot::workload::Key Next(cot::Rng& rng) override {
        return n_ - 1 - inner_.Next(rng);
      }
      uint64_t item_count() const override { return n_; }
      std::string name() const override { return "reversed-zipf"; }

     private:
      cot::workload::ZipfianGenerator inner_;
      uint64_t n_;
    };
    Reversed era2(kKeySpace);

    // Drive era 2 and sample the recovery.
    uint64_t hits_100k = 0, hits_400k = 0;
    for (int window = 0; window < 4; ++window) {
      uint64_t window_hits = 0;
      for (uint64_t i = 0; i < 100000; ++i) {
        cot::cache::Key k = era2.Next(rng);
        if (scenario.cache.Get(k).has_value()) {
          ++window_hits;
        } else {
          scenario.cache.Put(k, k);
        }
        scenario.resizer.OnAccess();
        if (scenario.resizer.EpochComplete()) scenario.resizer.EndEpoch(1.0);
      }
      if (window == 0) hits_100k = window_hits;
      if (window == 3) hits_400k = window_hits;
    }
    std::printf("%-14s %11.1f%% %13.1f%% %13.1f%% %8zu\n",
                enable_decay ? "decay ON" : "decay OFF", era1_rate * 100.0,
                hits_100k / 1000.0, hits_400k / 1000.0,
                scenario.DecayEvents());
  }

  std::printf("\nWith decay, Case 2 halves all hotness as soon as the "
              "tracker out-hits the cache, so the new\ntrend takes the "
              "lines within a few epochs; without it, era-1 residents "
              "block the cache far longer.\n");
  return 0;
}
