// Quickstart: drop a CoT front-end cache in front of any key/value
// back-end.
//
// The cache stores fixed-size value handles (like memcached item
// pointers); this example keeps the actual payloads in a side store keyed
// by handle, the pattern a real front-end server would use for blobs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <unordered_map>

#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/key_space.h"
#include "workload/zipfian_generator.h"

int main() {
  // A CoT cache with 64 lines, tracking 512 keys (8:1 — the ratio CoT's
  // resizer discovers for Zipfian 0.99; see examples/social_feed.cc for
  // fully automatic sizing).
  cot::core::CotCache cache(/*cache_capacity=*/64, /*tracker_capacity=*/512);

  // Payload side store: handle -> bytes. The "database" below fabricates a
  // profile blob on demand.
  std::unordered_map<cot::cache::Value, std::string> payloads;
  cot::cache::Value next_handle = 1;
  auto fetch_from_database = [&](const std::string& key) {
    cot::cache::Value handle = next_handle++;
    payloads[handle] = "profile{" + key + "}";
    return handle;
  };

  // 100k lookups over a million-profile table, Zipfian-skewed like real
  // social traffic.
  cot::workload::KeySpace keys(1000000);
  cot::workload::ZipfianGenerator popularity(keys.size(), 0.99);
  cot::Rng rng(2024);

  for (int i = 0; i < 100000; ++i) {
    cot::workload::Key id = popularity.Next(rng);
    std::string key = keys.Format(id);

    std::optional<cot::cache::Value> handle = cache.Get(id);
    if (!handle.has_value()) {
      // Miss: fetch from the slow path and *offer* it to the cache. CoT
      // admits it only if it is hotter than the coldest resident key.
      cot::cache::Value fresh = fetch_from_database(key);
      cache.Put(id, fresh);
      handle = fresh;
    }
    (void)payloads[*handle];  // use the payload
  }

  const cot::cache::CacheStats& stats = cache.stats();
  std::printf("lookups:        %llu\n",
              static_cast<unsigned long long>(stats.lookups()));
  std::printf("hit rate:       %.1f%% with only %zu cache lines\n",
              stats.HitRate() * 100.0, cache.capacity());
  std::printf("admissions:     %llu (Put offers declined: the admission "
              "filter at work)\n",
              static_cast<unsigned long long>(stats.insertions));
  std::printf("h_min:          %.1f (hotness a newcomer must beat)\n",
              cache.MinCachedHotness().value_or(0.0));

  // Updates invalidate and, via the dual-cost model, push churn-heavy keys
  // out of contention.
  cot::workload::Key hot_key = 0;
  cache.Invalidate(hot_key);
  std::printf("after update:   key %llu invalidated, tracker hotness %.1f\n",
              static_cast<unsigned long long>(hot_key),
              cache.tracker().HotnessOf(hot_key).value_or(0.0));
  return 0;
}
