// instance_migration: warm handoff across front-end instance generations.
//
// The paper motivates CoT with the elasticity *and migration flexibility*
// of the cloud: front-end instances are routinely replaced (spot
// reclamation, deploys, autoscaling). A freshly started replacement with
// a cold cache re-exposes the back-end to the full workload skew until it
// re-learns the heavy hitters. `CotCache::ExportState`/`ImportState`
// hands the tracker+cache knowledge to the successor, so the back-end
// never sees the skew spike.
//
// Build & run:  ./build/examples/instance_migration

#include <cstdio>
#include <memory>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "metrics/imbalance.h"
#include "workload/op_stream.h"

namespace {

constexpr uint64_t kKeySpace = 200000;

// Serves `ops` operations and reports the back-end imbalance and the local
// hit rate over exactly that window.
struct WindowReport {
  double imbalance;
  double hit_rate;
};

WindowReport ServeWindow(cot::cluster::CacheCluster& cluster,
                         cot::cluster::FrontendClient& client,
                         cot::workload::OpStream& stream, uint64_t ops) {
  cluster.ResetServerCounters();
  uint64_t hits_before = client.stats().local_hits;
  uint64_t reads_before = client.stats().reads;
  for (uint64_t i = 0; i < ops; ++i) client.Apply(stream.Next());
  double hit_rate =
      static_cast<double>(client.stats().local_hits - hits_before) /
      static_cast<double>(client.stats().reads - reads_before);
  return WindowReport{
      cot::metrics::LoadImbalance(cluster.PerServerLookups()), hit_rate};
}

}  // namespace

int main() {
  cot::cluster::CacheCluster cluster(8, kKeySpace);
  cot::workload::PhaseSpec zipf;
  zipf.distribution = cot::workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 0.998;
  zipf.num_ops = 0;
  auto stream = cot::workload::OpStream::Create(kKeySpace, {zipf}, 42);
  if (!stream.ok()) return 1;

  // Generation 1 warms up and reaches balance.
  auto gen1 = std::make_unique<cot::cluster::FrontendClient>(
      &cluster, std::make_unique<cot::core::CotCache>(512, 2048));
  WindowReport warm = ServeWindow(cluster, *gen1, *stream, 1000000);
  std::printf("generation 1 (warm):      imbalance %.2f, hit rate %.1f%%\n",
              warm.imbalance, warm.hit_rate * 100.0);

  // Export its knowledge before it is torn down.
  auto* gen1_cache = dynamic_cast<cot::core::CotCache*>(gen1->local_cache());
  auto handoff = gen1_cache->ExportState();
  std::printf("handoff payload:          %zu tracked keys (%zu with cached "
              "values) — %.1f KB of metadata\n",
              handoff.size(),
              static_cast<size_t>(std::count_if(
                  handoff.begin(), handoff.end(),
                  [](const auto& e) { return e.value.has_value(); })),
              handoff.size() * 24.0 / 1024.0);
  gen1.reset();  // instance reclaimed

  // A cold generation 2, for contrast.
  {
    cot::cluster::FrontendClient cold(
        &cluster, std::make_unique<cot::core::CotCache>(512, 2048));
    WindowReport report = ServeWindow(cluster, cold, *stream, 10000);
    std::printf("generation 2, first 10k ops, cold: imbalance %.2f, hit rate "
                "%.1f%%   <- the back-end eats the skew again\n",
                report.imbalance, report.hit_rate * 100.0);
  }

  // Warm-started generation 2.
  {
    cot::cluster::FrontendClient warm2(
        &cluster, std::make_unique<cot::core::CotCache>(512, 2048));
    auto* cache = dynamic_cast<cot::core::CotCache*>(warm2.local_cache());
    cache->ImportState(handoff);
    WindowReport report = ServeWindow(cluster, warm2, *stream, 10000);
    std::printf("generation 2, first 10k ops, warm: imbalance %.2f, hit rate "
                "%.1f%%   <- no relearning window\n",
                report.imbalance, report.hit_rate * 100.0);
  }

  std::printf("\nThe handoff is tracker metadata plus value handles — tiny "
              "compared to re-warming against the\nback-end, and exactly "
              "the state the space-saving tracker guarantees to be the "
              "workload's top-K.\n");
  return 0;
}
