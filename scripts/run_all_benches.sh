#!/bin/sh
# Runs every paper-reproduction bench at the given scale, then the
# google-benchmark microbenches with JSON output for regression tracking.
#
# Usage: scripts/run_all_benches.sh [--micro-only] [--accept] [bench flags...]
#   --micro-only  skip the paper benches; record/check microbenches only
#   --accept      overwrite BENCH_micro.json even if the regression check
#                 fails (intentional trade-offs; say why in the commit)
#
# Everything runs from build-release/ (-O2 -DNDEBUG), configured and built
# here when missing. Timings from unoptimized builds are meaningless as a
# trajectory, so the harness refuses to record them: the attestation below
# reads the repo's own CMAKE_BUILD_TYPE. (The `library_build_type` field
# google-benchmark emits describes the *benchmark library* — Debian's
# prebuilt package always reports "debug" — so after recording, that field
# is re-stamped with the attested build type of the code actually under
# test.)
set -e
cd "$(dirname "$0")/.."

BUILD_DIR=build-release
MICRO_ONLY=0
ACCEPT=0
while [ $# -gt 0 ]; do
  case "$1" in
    --micro-only) MICRO_ONLY=1; shift ;;
    --accept) ACCEPT=1; shift ;;
    *) break ;;
  esac
done

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "configuring $BUILD_DIR (Release)"
  cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release > /dev/null
fi
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    echo "error: $BUILD_DIR is configured as '${BUILD_TYPE:-<empty>}'," >&2
    echo "not Release; refusing to record BENCH_micro.json from an" >&2
    echo "unoptimized build. Reconfigure with -DCMAKE_BUILD_TYPE=Release." >&2
    exit 1
    ;;
esac
cmake --build "$BUILD_DIR" -j"$(nproc 2>/dev/null || echo 4)" > /dev/null

# google-benchmark binaries reject the paper benches' flags, so they run
# separately below.
MICRO_BENCHES="micro_ops parallel_experiment"

is_micro() {
  for m in $MICRO_BENCHES; do
    [ "$1" = "$BUILD_DIR/bench/$m" ] && return 0
  done
  return 1
}

if [ "$MICRO_ONLY" = 0 ]; then
  for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    if is_micro "$b"; then continue; fi
    echo "================================================================"
    echo "$b $*"
    "$b" "$@"
  done
fi

echo "================================================================"
echo "microbenches -> BENCH_micro.new.json"
NEW=BENCH_micro.new.json
printf '[\n' > "$NEW"
first=1
for m in $MICRO_BENCHES; do
  b="$BUILD_DIR/bench/$m"
  [ -f "$b" ] && [ -x "$b" ] || continue
  out="BENCH_micro.$m.json"
  "$b" --benchmark_format=json --benchmark_out="$out" \
       --benchmark_out_format=json \
       --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
       > /dev/null
  if [ "$first" = 1 ]; then first=0; else printf ',\n' >> "$NEW"; fi
  cat "$out" >> "$NEW"
  rm -f "$out"
done
printf '\n]\n' >> "$NEW"

# Re-stamp library_build_type with the attested repo build type (see the
# header comment) so the trajectory records what was actually measured.
python3 - "$NEW" "$(echo "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
runs = json.load(open(path))
for run in runs:
    run["context"]["library_build_type"] = build_type
json.dump(runs, open(path, "w"), indent=1)
EOF

# Families the gate demands exist in every fresh recording: a silently
# dropped registration (renamed bench, dead #ifdef) must fail loudly, not
# sail through as an only-in-baseline warning.
REQUIRED_FAMILIES="
  --require BM_CotAccess
  --require BM_CotGetHit
  --require BM_CotGetMiss
  --require BM_CotUntrackedArrival
  --require BM_TrackerTrackAccess
  --require BM_CotMixedReadUpdate
  --require BM_HealthMonitorObserve
"

if [ -f BENCH_micro.json ]; then
  echo "regression check vs committed BENCH_micro.json"
  # shellcheck disable=SC2086  # REQUIRED_FAMILIES is deliberate word-splitting
  if python3 tools/check_bench_regression.py BENCH_micro.json "$NEW" \
       $REQUIRED_FAMILIES; then
    :
  elif [ "$ACCEPT" = 1 ]; then
    echo "regression check failed but --accept given; recording anyway"
  else
    echo "error: regression check failed; fresh results left in $NEW" >&2
    echo "(re-run with --accept to record them anyway)" >&2
    exit 1
  fi
fi
mv "$NEW" BENCH_micro.json
echo "wrote BENCH_micro.json"
