#!/bin/sh
# Runs every paper-reproduction bench at the given scale.
# Usage: scripts/run_all_benches.sh [--full]
set -e
cd "$(dirname "$0")/.."
for b in build/bench/*; do
  echo "================================================================"
  echo "$b $*"
  "$b" "$@"
done
