#!/bin/sh
# Runs every paper-reproduction bench at the given scale, then the
# google-benchmark microbenches with JSON output for regression tracking.
# Usage: scripts/run_all_benches.sh [--full]
# Paper benches get the flags verbatim; microbench results land in
# BENCH_micro.json at the repo root.
set -e
cd "$(dirname "$0")/.."

# google-benchmark binaries reject the paper benches' flags, so they run
# separately below.
MICRO_BENCHES="micro_ops parallel_experiment"

is_micro() {
  for m in $MICRO_BENCHES; do
    [ "$1" = "build/bench/$m" ] && return 0
  done
  return 1
}

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  if is_micro "$b"; then continue; fi
  echo "================================================================"
  echo "$b $*"
  "$b" "$@"
done

echo "================================================================"
echo "microbenches -> BENCH_micro.json"
: > BENCH_micro.json
first=1
printf '[\n' > BENCH_micro.json
for m in $MICRO_BENCHES; do
  b="build/bench/$m"
  [ -f "$b" ] && [ -x "$b" ] || continue
  out="BENCH_micro.$m.json"
  "$b" --benchmark_format=json --benchmark_out="$out" \
       --benchmark_out_format=json > /dev/null
  if [ "$first" = 1 ]; then first=0; else printf ',\n' >> BENCH_micro.json; fi
  cat "$out" >> BENCH_micro.json
  rm -f "$out"
done
printf '\n]\n' >> BENCH_micro.json
echo "wrote BENCH_micro.json"
